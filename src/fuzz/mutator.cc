#include "src/fuzz/mutator.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace ciofuzz {
namespace {

// Boundary values that historically break index/length validation.
constexpr uint64_t kInteresting[] = {
    0,    1,          0x7f,       0x80,       0xff,       0x100,
    255,  UINT16_MAX, 0x8000,     UINT32_MAX, 0x80000000, UINT64_MAX,
    63,   64,         65,         127,        128,        129,
    4096, 2048,       0xdeadbeef,
};
constexpr size_t kInterestingCount = sizeof(kInteresting) / sizeof(uint64_t);

uint32_t OpWidth(MutOp op, uint32_t step_width) {
  switch (op) {
    case MutOp::kBitFlip:
    case MutOp::kByteSet:
      return 1;
    case MutOp::kWriteLe16:
      return 2;
    case MutOp::kWriteLe32:
      return 4;
    case MutOp::kWriteLe64:
      return 8;
    case MutOp::kFillRandom:
    case MutOp::kAddDelta:
      return step_width == 0 ? 1 : step_width;
  }
  return 1;
}

void ReadWindow(const TargetWindow& window, uint64_t offset,
                ciobase::MutableByteSpan out) {
  if (window.region != nullptr) {
    window.region->HostRead(window.base_offset + offset, out);
  } else {
    std::memcpy(out.data(), window.raw.data() + offset, out.size());
  }
}

void WriteWindow(const TargetWindow& window, uint64_t offset,
                 ciobase::ByteSpan data) {
  if (window.region != nullptr) {
    window.region->HostWrite(window.base_offset + offset, data);
  } else {
    std::memcpy(window.raw.data() + offset, data.data(), data.size());
  }
}

}  // namespace

std::string_view MutOpName(MutOp op) {
  switch (op) {
    case MutOp::kBitFlip:
      return "bit-flip";
    case MutOp::kByteSet:
      return "byte-set";
    case MutOp::kWriteLe16:
      return "write-le16";
    case MutOp::kWriteLe32:
      return "write-le32";
    case MutOp::kWriteLe64:
      return "write-le64";
    case MutOp::kFillRandom:
      return "fill-random";
    case MutOp::kAddDelta:
      return "add-delta";
  }
  return "?";
}

bool ParseMutOp(std::string_view name, MutOp* out) {
  for (int i = 0; i < kMutOpCount; ++i) {
    MutOp op = static_cast<MutOp>(i);
    if (name == MutOpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

std::string FuzzInput::Serialize() const {
  std::string text;
  char line[160];
  for (const MutationStep& step : steps) {
    std::snprintf(line, sizeof(line), "step %u %s %s %llu %u %llu\n",
                  step.round, step.window.c_str(),
                  std::string(MutOpName(step.op)).c_str(),
                  static_cast<unsigned long long>(step.offset), step.width,
                  static_cast<unsigned long long>(step.value));
    text += line;
  }
  return text;
}

bool FuzzInput::Parse(std::string_view text, FuzzInput* out) {
  out->steps.clear();
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "step") {
      // Header lines ("target=...", "seed=...") and anything else non-step.
      continue;
    }
    MutationStep step;
    std::string op_name;
    unsigned long long offset = 0;
    unsigned long long value = 0;
    fields >> step.round >> step.window >> op_name >> offset >> step.width >>
        value;
    if (fields.fail() || !ParseMutOp(op_name, &step.op)) {
      return false;
    }
    step.offset = offset;
    step.value = value;
    out->steps.push_back(std::move(step));
  }
  return true;
}

const TargetWindow& Mutator::PickWindow(
    const std::vector<TargetWindow>& windows) {
  uint64_t total = 0;
  for (const TargetWindow& window : windows) {
    total += window.weight;
  }
  uint64_t pick = rng_.NextBounded(total == 0 ? 1 : total);
  for (const TargetWindow& window : windows) {
    if (pick < window.weight) {
      return window;
    }
    pick -= window.weight;
  }
  return windows.back();
}

uint64_t Mutator::InterestingValue() {
  if (rng_.NextBool(0.5)) {
    return kInteresting[rng_.NextBounded(kInterestingCount)];
  }
  return rng_.NextU64();
}

MutationStep Mutator::RandomStep(const std::vector<TargetWindow>& windows,
                                 uint32_t max_rounds) {
  const TargetWindow& window = PickWindow(windows);
  MutationStep step;
  step.round = static_cast<uint32_t>(
      rng_.NextBounded(max_rounds == 0 ? 1 : max_rounds));
  step.window = window.name;
  step.op = static_cast<MutOp>(rng_.NextBounded(kMutOpCount));
  step.offset = rng_.NextBounded(window.length == 0 ? 1 : window.length);
  // Aligned offsets hit counter/index cells far more often than random ones.
  if (rng_.NextBool(0.5)) {
    step.offset &= ~static_cast<uint64_t>(7);
  }
  step.width = static_cast<uint32_t>(1) << rng_.NextBounded(4);  // 1,2,4,8
  if (step.op == MutOp::kFillRandom) {
    step.width = static_cast<uint32_t>(rng_.NextInRange(1, 64));
  }
  step.value = InterestingValue();
  return step;
}

FuzzInput Mutator::Generate(const std::vector<TargetWindow>& windows,
                            uint32_t max_rounds, size_t max_steps) {
  FuzzInput input;
  if (windows.empty()) {
    return input;
  }
  size_t count = rng_.NextInRange(1, max_steps == 0 ? 1 : max_steps);
  for (size_t i = 0; i < count; ++i) {
    input.steps.push_back(RandomStep(windows, max_rounds));
  }
  return input;
}

FuzzInput Mutator::Mutate(const FuzzInput& base,
                          const std::vector<TargetWindow>& windows,
                          uint32_t max_rounds) {
  FuzzInput input = base;
  if (windows.empty()) {
    return input;
  }
  size_t edits = rng_.NextInRange(1, 3);
  for (size_t i = 0; i < edits; ++i) {
    uint64_t choice = rng_.NextBounded(4);
    if (choice == 0 || input.steps.empty()) {
      input.steps.push_back(RandomStep(windows, max_rounds));
    } else if (choice == 1 && input.steps.size() > 1) {
      input.steps.erase(input.steps.begin() +
                        rng_.NextBounded(input.steps.size()));
    } else {
      MutationStep& step = input.steps[rng_.NextBounded(input.steps.size())];
      switch (rng_.NextBounded(3)) {
        case 0:
          step.value = InterestingValue();
          break;
        case 1:
          step.offset = rng_.NextBounded(256) * 8;
          break;
        default:
          step.round = static_cast<uint32_t>(
              rng_.NextBounded(max_rounds == 0 ? 1 : max_rounds));
          break;
      }
    }
  }
  return input;
}

size_t Mutator::ApplyRound(const FuzzInput& input, uint32_t round,
                           const std::vector<TargetWindow>& windows) {
  size_t applied = 0;
  for (const MutationStep& step : input.steps) {
    if (step.round != round) {
      continue;
    }
    for (const TargetWindow& window : windows) {
      if (window.name == step.window && window.bound()) {
        ApplyStep(step, window);
        ++applied;
        break;
      }
    }
  }
  return applied;
}

void Mutator::ApplyStep(const MutationStep& step, const TargetWindow& window) {
  uint64_t length =
      window.region != nullptr ? window.length : window.raw.size();
  if (window.region != nullptr) {
    // Never write past the region even if the spec length was optimistic.
    uint64_t region_size = window.region->size();
    if (window.base_offset >= region_size) {
      return;
    }
    length = std::min<uint64_t>(length, region_size - window.base_offset);
  }
  uint32_t width = OpWidth(step.op, step.width);
  if (length == 0 || !window.bound()) {
    return;
  }
  width = static_cast<uint32_t>(std::min<uint64_t>(width, length));
  uint64_t offset = step.offset % length;
  if (offset + width > length) {
    offset = length - width;
  }

  uint8_t bytes[64];
  switch (step.op) {
    case MutOp::kBitFlip: {
      ReadWindow(window, offset, ciobase::MutableByteSpan(bytes, 1));
      bytes[0] ^= static_cast<uint8_t>(1u << (step.value % 8));
      WriteWindow(window, offset, ciobase::ByteSpan(bytes, 1));
      break;
    }
    case MutOp::kByteSet: {
      bytes[0] = static_cast<uint8_t>(step.value);
      WriteWindow(window, offset, ciobase::ByteSpan(bytes, 1));
      break;
    }
    case MutOp::kWriteLe16: {
      ciobase::StoreLe16(bytes, static_cast<uint16_t>(step.value));
      WriteWindow(window, offset, ciobase::ByteSpan(bytes, width));
      break;
    }
    case MutOp::kWriteLe32: {
      ciobase::StoreLe32(bytes, static_cast<uint32_t>(step.value));
      WriteWindow(window, offset, ciobase::ByteSpan(bytes, width));
      break;
    }
    case MutOp::kWriteLe64: {
      ciobase::StoreLe64(bytes, step.value);
      WriteWindow(window, offset, ciobase::ByteSpan(bytes, width));
      break;
    }
    case MutOp::kFillRandom: {
      // Independent xorshift stream so the fill is a pure function of the
      // step, not of mutator state.
      uint64_t x = step.value | 1;
      uint32_t n = std::min<uint32_t>(width, sizeof(bytes));
      for (uint32_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        bytes[i] = static_cast<uint8_t>(x);
      }
      WriteWindow(window, offset, ciobase::ByteSpan(bytes, n));
      break;
    }
    case MutOp::kAddDelta: {
      uint32_t n = width;
      if (n != 1 && n != 2 && n != 4 && n != 8) {
        n = 8;
      }
      if (offset + n > length) {
        offset = length >= n ? length - n : 0;
        n = static_cast<uint32_t>(std::min<uint64_t>(n, length));
      }
      uint8_t raw[8] = {0};
      ReadWindow(window, offset, ciobase::MutableByteSpan(raw, n));
      uint64_t current = 0;
      for (uint32_t i = 0; i < n; ++i) {
        current |= static_cast<uint64_t>(raw[i]) << (8 * i);
      }
      current += step.value;
      for (uint32_t i = 0; i < n; ++i) {
        raw[i] = static_cast<uint8_t>(current >> (8 * i));
      }
      WriteWindow(window, offset, ciobase::ByteSpan(raw, n));
      break;
    }
  }
}

}  // namespace ciofuzz
