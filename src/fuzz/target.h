// Fuzz targets: one scripted guest workload per fuzzable stack, plus the
// oracle that classifies what hostile shared-memory mutation did to it.
//
// Each target builds a FRESH world per input (determinism: nothing leaks
// between iterations), binds its host-writable windows by name, then runs a
// fixed echo workload while the mutation schedule fires round by round.
//
// Oracle — what gates (a real interface-hardening bug):
//   * memory-violation:   a guest-actor TEE violation (the hostile input
//                         steered a guest driver out of bounds),
//   * compartment-violation: an isolation break between app and I/O domains,
//   * silent-corruption:  a delivered payload that matches nothing the peer
//                         sent — TLS (net), AEAD-at-rest (storage) and the
//                         workload's own seal (vsock) make every corruption
//                         typed, so a mismatch means a check was bypassed,
//   * hang:               the net workload stopped with NO typed non-OK
//                         coverage edge and the node not Failed() — the
//                         guest wedged without noticing anything.
// Everything else — lost messages, watchdog resets, dead links, rejected
// completions — is degraded service: availability is explicitly not the
// property under test (the host can always just stop running us).
//
// Unhardened profiles (passthrough-l2, tunneled-l2 run the driver with
// HardeningOptions::Passthrough()) are expected to produce memory
// violations under mutation — that is the CVE class the paper catalogues,
// reproduced on purpose. Their targets report expect_vulnerable() and the
// campaign counts those hits separately instead of failing the gate; the
// same violation on a hardened profile still gates hard.
//
// Fuzzed stacks: passthrough-l2, hardened-virtio, dual-boundary,
// tunneled-l2 (each over its shared-memory transport), the hardened-virtio
// "zoo" variant (two bonded net devices + a vsock device: three regions
// mutated at once), and the storage block ring. syscall-l5 and
// direct-device are not fuzzed: neither exposes a host-writable
// shared-memory window (syscalls marshal by value; the attested DDA device
// is inside the TCB).

#ifndef SRC_FUZZ_TARGET_H_
#define SRC_FUZZ_TARGET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/fuzz/mutator.h"

namespace ciofuzz {

struct TargetOptions {
  uint64_t seed = 1;        // world seed (TLS nonces, payload bytes)
  size_t messages = 3;      // echo messages per run
  size_t message_size = 64;
  uint32_t pump_rounds = 160;  // mutation/pump rounds after establish
};

struct RunResult {
  bool completed = false;   // the scripted workload finished
  bool gated = false;       // oracle found a real bug
  std::string kind;         // gated failure class (empty otherwise)
  std::string note;
  size_t steps_applied = 0;
  size_t non_ok_edges = 0;  // coverage edges with code != kOk this run
};

class FuzzTarget {
 public:
  virtual ~FuzzTarget() = default;

  virtual std::string_view name() const = 0;

  // True when this target's guest stack is deliberately unhardened, so a
  // memory-violation under mutation demonstrates the known CVE class
  // rather than a regression. The fuzzer tallies these separately.
  virtual bool expect_vulnerable() const { return false; }

  // Unbound window specs (name/length/weight) for input generation; Run()
  // binds the same names against the freshly built world.
  virtual std::vector<TargetWindow> WindowSpecs() const = 0;

  // Builds a world, applies `input` round by round while the workload runs,
  // and classifies the outcome. Resets the global CoverageMap hit counts on
  // entry, so coverage observed after Run() belongs to this run alone.
  virtual RunResult Run(const FuzzInput& input, Mutator& mutator,
                        const TargetOptions& options) = 0;
};

// All fuzzable targets, in a fixed order (the fuzzer round-robins them).
std::vector<std::unique_ptr<FuzzTarget>> AllFuzzTargets();

// Lookup by name ("net-dual-boundary", "storage-ring", ...); nullptr if
// unknown.
std::unique_ptr<FuzzTarget> MakeFuzzTarget(std::string_view name);

}  // namespace ciofuzz

#endif  // SRC_FUZZ_TARGET_H_
