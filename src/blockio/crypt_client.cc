#include "src/blockio/crypt_client.h"

#include <cstring>

namespace cioblock {

// Stored block layout: [generation u64][sealed_len u32][ciphertext || tag].
// generation and sealed_len are bound into the AEAD associated data along
// with the LBA, so the host cannot tamper with them undetected.

EncryptedBlockClient::EncryptedBlockClient(BlockClient* inner,
                                           ciobase::ByteSpan key,
                                           ciobase::CostModel* costs)
    : inner_(inner), key_(ciocrypto::DeriveAeadKey(key)), costs_(costs) {}

ciobase::Buffer EncryptedBlockClient::NonceFor(uint64_t lba,
                                               uint64_t generation) const {
  ciobase::Buffer nonce(ciocrypto::kAeadNonceSize, 0);
  ciobase::StoreLe64(nonce.data(), lba ^ (generation << 1));
  ciobase::StoreLe32(nonce.data() + 8, static_cast<uint32_t>(generation));
  return nonce;
}

ciobase::Status EncryptedBlockClient::WriteBlock(uint64_t lba,
                                                 ciobase::ByteSpan data) {
  if (data.size() > block_size()) {
    return ciobase::InvalidArgument("plaintext exceeds usable block size");
  }
  if (costs_ != nullptr) {
    costs_->ChargeAead(data.size());
  }
  uint64_t generation = ++generations_[lba];
  uint32_t sealed_len =
      static_cast<uint32_t>(data.size() + ciocrypto::kAeadTagSize);
  uint8_t aad[20];
  ciobase::StoreLe64(aad, lba);
  ciobase::StoreLe64(aad + 8, generation);
  ciobase::StoreLe32(aad + 16, sealed_len);
  ciobase::Buffer sealed =
      ciocrypto::AeadSeal(key_, NonceFor(lba, generation), aad, data);
  ciobase::Buffer stored(12);
  ciobase::StoreLe64(stored.data(), generation);
  ciobase::StoreLe32(stored.data() + 8, sealed_len);
  ciobase::Append(stored, sealed);
  return inner_->WriteBlock(lba, stored);
}

ciobase::Result<ciobase::Buffer> EncryptedBlockClient::ReadBlock(
    uint64_t lba) {
  auto stored = inner_->ReadBlock(lba);
  if (!stored.ok()) {
    return stored.status();
  }
  // Never-written blocks are all-zero images; report them as empty.
  bool all_zero = true;
  for (uint8_t b : *stored) {
    if (b != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    if (generations_.count(lba) != 0) {
      return ciobase::Tampered("host erased a written block");
    }
    return ciobase::Buffer{};
  }
  if (stored->size() < kOverhead) {
    return ciobase::Tampered("stored block truncated");
  }
  uint64_t generation = ciobase::LoadLe64(stored->data());
  uint32_t sealed_len = ciobase::LoadLe32(stored->data() + 8);
  auto it = generations_.find(lba);
  if (it != generations_.end() && generation != it->second) {
    return ciobase::Tampered("block rollback or replay detected");
  }
  if (sealed_len < ciocrypto::kAeadTagSize ||
      12 + static_cast<size_t>(sealed_len) > stored->size()) {
    return ciobase::Tampered("stored block length forged");
  }
  uint8_t aad[20];
  ciobase::StoreLe64(aad, lba);
  ciobase::StoreLe64(aad + 8, generation);
  ciobase::StoreLe32(aad + 16, sealed_len);
  if (costs_ != nullptr) {
    costs_->ChargeAead(sealed_len);
  }
  auto opened = ciocrypto::AeadOpen(
      key_, NonceFor(lba, generation), aad,
      ciobase::ByteSpan(stored->data() + 12, sealed_len));
  if (!opened.ok()) {
    return ciobase::Tampered("block authentication failed");
  }
  generations_[lba] = generation;
  return opened;
}

uint64_t EncryptedBlockClient::Generation(uint64_t lba) const {
  auto it = generations_.find(lba);
  return it == generations_.end() ? 0 : it->second;
}

}  // namespace cioblock
