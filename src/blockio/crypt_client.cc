#include "src/blockio/crypt_client.h"

#include <cstring>

#include "src/base/coverage.h"

namespace cioblock {

// Stored block layout: [generation u64][sealed_len u32][ciphertext || tag].
// generation and sealed_len are bound into the AEAD associated data along
// with the LBA, so the host cannot tamper with them undetected.

EncryptedBlockClient::EncryptedBlockClient(BlockClient* inner,
                                           ciobase::ByteSpan key,
                                           ciobase::CostModel* costs,
                                           CryptClientOptions options)
    : inner_(inner), key_(ciocrypto::DeriveAeadKey(key)), costs_(costs),
      options_(options) {
  // Satellite fix: the old code computed inner block_size - kOverhead
  // unconditionally, underflowing for tiny inner blocks. Validate the
  // geometry once here; an invalid client fails every op cleanly.
  uint32_t inner_bs = inner_->block_size();
  uint64_t inner_count = inner_->block_count();
  if (inner_bs <= kOverhead) {
    geometry_status_ = ciobase::InvalidArgument(
        "inner block size too small for AEAD overhead");
    return;
  }
  usable_block_size_ = inner_bs - kOverhead;
  if (options_.durable_generations) {
    if (options_.rollback_counter == nullptr) {
      geometry_status_ = ciobase::InvalidArgument(
          "durable generations require a rollback counter");
      return;
    }
    // Reserve two alternating table slots of T chunks each at the head of
    // the inner device: smallest T with T chunks covering every remaining
    // data block's generation entry.
    uint64_t epc = usable_block_size_ / 8;
    if (epc == 0) {
      geometry_status_ = ciobase::InvalidArgument(
          "block too small for a generation table chunk");
      return;
    }
    uint64_t t = 1;
    while (2 * t < inner_count && t * epc < inner_count - 2 * t) {
      ++t;
    }
    if (2 * t >= inner_count) {
      geometry_status_ = ciobase::InvalidArgument(
          "device too small for the generation table");
      return;
    }
    reserved_blocks_ = 2 * t;
  } else {
    session_established_ = true;  // volatile mode needs no mount handshake
  }
  data_block_count_ = inner_count - reserved_blocks_;
}

ciobase::Buffer EncryptedBlockClient::NonceFor(uint64_t lba,
                                               uint64_t generation) const {
  // Generations are globally unique across the disk's lifetime (volatile:
  // per-process counter; durable: session epoch salt in the high bits), so
  // the nonce is unique even before mixing in the LBA.
  ciobase::Buffer nonce(ciocrypto::kAeadNonceSize, 0);
  ciobase::StoreLe64(nonce.data(), generation);
  ciobase::StoreLe32(nonce.data() + 8, static_cast<uint32_t>(lba));
  return nonce;
}

ciobase::Buffer EncryptedBlockClient::SealStored(
    uint64_t lba, uint64_t generation, ciobase::ByteSpan plaintext) const {
  uint32_t sealed_len =
      static_cast<uint32_t>(plaintext.size() + ciocrypto::kAeadTagSize);
  uint8_t aad[20];
  ciobase::StoreLe64(aad, lba);
  ciobase::StoreLe64(aad + 8, generation);
  ciobase::StoreLe32(aad + 16, sealed_len);
  if (costs_ != nullptr) {
    costs_->ChargeAead(plaintext.size());
  }
  ciobase::Buffer sealed =
      ciocrypto::AeadSeal(key_, NonceFor(lba, generation), aad, plaintext);
  ciobase::Buffer stored(12);
  ciobase::StoreLe64(stored.data(), generation);
  ciobase::StoreLe32(stored.data() + 8, sealed_len);
  ciobase::Append(stored, sealed);
  return stored;
}

ciobase::Result<ciobase::Buffer> EncryptedBlockClient::OpenStored(
    uint64_t lba, uint64_t generation, ciobase::ByteSpan stored) const {
  if (stored.size() < kOverhead) {
    CIO_COV("crypt.open.truncated", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("stored block truncated");
  }
  uint32_t sealed_len = ciobase::LoadLe32(stored.data() + 8);
  if (sealed_len < ciocrypto::kAeadTagSize ||
      12 + static_cast<size_t>(sealed_len) > stored.size()) {
    CIO_COV("crypt.open.length_forged", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("stored block length forged");
  }
  uint8_t aad[20];
  ciobase::StoreLe64(aad, lba);
  ciobase::StoreLe64(aad + 8, generation);
  ciobase::StoreLe32(aad + 16, sealed_len);
  if (costs_ != nullptr) {
    costs_->ChargeAead(sealed_len);
  }
  auto opened = ciocrypto::AeadOpen(
      key_, NonceFor(lba, generation), aad,
      ciobase::ByteSpan(stored.data() + 12, sealed_len));
  if (!opened.ok()) {
    CIO_COV("crypt.open.auth_failed", ciobase::StatusCode::kTampered);
    return ciobase::Tampered("block authentication failed");
  }
  CIO_COV("crypt.open.ok", ciobase::StatusCode::kOk);
  return opened;
}

uint64_t EncryptedBlockClient::NextGeneration() {
  ++session_writes_;
  if (!options_.durable_generations) {
    return session_writes_;
  }
  return (session_salt_ << 24) | (session_writes_ & 0xFFFFFF);
}

ciobase::Status EncryptedBlockClient::EnsureSession() {
  CIO_RETURN_IF_ERROR(geometry_status_);
  if (session_established_) {
    return ciobase::OkStatus();
  }
  return Remount();
}

ciobase::Status EncryptedBlockClient::WriteBlock(uint64_t lba,
                                                 ciobase::ByteSpan data) {
  CIO_RETURN_IF_ERROR(EnsureSession());
  if (lba >= data_block_count_) {
    return ciobase::OutOfRange("lba beyond usable device");
  }
  if (data.size() > usable_block_size_) {
    return ciobase::InvalidArgument("plaintext exceeds usable block size");
  }
  uint64_t generation = NextGeneration();
  CIO_RETURN_IF_ERROR(inner_->WriteBlock(
      lba + reserved_blocks_, SealStored(lba, generation, data)));
  generations_[lba] = generation;
  dirty_ = true;
  return ciobase::OkStatus();
}

ciobase::Result<ciobase::Buffer> EncryptedBlockClient::ReadBlock(
    uint64_t lba) {
  CIO_RETURN_IF_ERROR(EnsureSession());
  if (lba >= data_block_count_) {
    return ciobase::OutOfRange("lba beyond usable device");
  }
  auto stored = inner_->ReadBlock(lba + reserved_blocks_);
  if (!stored.ok()) {
    return stored.status();
  }
  // Never-written blocks are all-zero images; report them as empty.
  bool all_zero = true;
  for (uint8_t b : *stored) {
    if (b != 0) {
      all_zero = false;
      break;
    }
  }
  auto it = generations_.find(lba);
  if (all_zero) {
    if (it != generations_.end()) {
      return ciobase::Tampered("host erased a written block");
    }
    return ciobase::Buffer{};
  }
  if (stored->size() < kOverhead) {
    return ciobase::Tampered("stored block truncated");
  }
  uint64_t generation = ciobase::LoadLe64(stored->data());
  if (it != generations_.end()) {
    if (generation != it->second) {
      return ciobase::Tampered("block rollback or replay detected");
    }
  } else if (options_.durable_generations) {
    // Durable mode tracks every flushed block; an untracked non-zero block
    // can only be host fabrication (unflushed writes die wholesale).
    return ciobase::Tampered("block not in the generation table");
  }
  auto opened = OpenStored(lba, generation, *stored);
  if (!opened.ok()) {
    return opened.status();
  }
  // Volatile mode adopts authenticated blocks it has not seen (fresh
  // client over an existing image).
  generations_[lba] = generation;
  return opened;
}

ciobase::Status EncryptedBlockClient::PersistGenerations() {
  uint64_t epoch = last_epoch_ + 1;
  uint64_t slot = epoch % 2;
  uint64_t chunks = ChunksPerSlot();
  uint64_t epc = EntriesPerChunk();
  for (uint64_t c = 0; c < chunks; ++c) {
    ciobase::Buffer plain(epc * 8, 0);
    for (uint64_t i = 0; i < epc; ++i) {
      uint64_t idx = c * epc + i;
      if (idx >= data_block_count_) {
        break;
      }
      auto it = generations_.find(idx);
      if (it != generations_.end()) {
        ciobase::StoreLe64(plain.data() + i * 8, it->second);
      }
    }
    CIO_RETURN_IF_ERROR(inner_->WriteBlock(
        slot * chunks + c, SealStored(kTableLbaBase + c, epoch, plain)));
  }
  last_epoch_ = epoch;
  dirty_ = false;
  return ciobase::OkStatus();
}

ciobase::Status EncryptedBlockClient::LoadGenerations() {
  uint64_t counter = options_.rollback_counter->value();
  uint64_t chunks = ChunksPerSlot();
  uint64_t epc = EntriesPerChunk();
  uint64_t best_epoch = 0;
  std::map<uint64_t, uint64_t> best_table;
  for (uint64_t slot = 0; slot < 2; ++slot) {
    uint64_t slot_epoch = 0;
    std::map<uint64_t, uint64_t> table;
    bool valid = true;
    for (uint64_t c = 0; c < chunks && valid; ++c) {
      auto stored = inner_->ReadBlock(slot * chunks + c);
      if (!stored.ok()) {
        if (stored.status().code() == ciobase::StatusCode::kTampered) {
          valid = false;  // corrupted slot; the other one may still be good
          break;
        }
        return stored.status();  // transport trouble: propagate, retryable
      }
      if (stored->size() < kOverhead) {
        valid = false;  // never written (or torn): not a table
        break;
      }
      uint64_t epoch = ciobase::LoadLe64(stored->data());
      if (c == 0) {
        slot_epoch = epoch;
      } else if (epoch != slot_epoch) {
        valid = false;  // chunks from different epochs: torn table write
        break;
      }
      auto plain = OpenStored(kTableLbaBase + c, epoch, *stored);
      if (!plain.ok() || plain->size() != epc * 8) {
        valid = false;
        break;
      }
      for (uint64_t i = 0; i < epc; ++i) {
        uint64_t idx = c * epc + i;
        uint64_t generation = ciobase::LoadLe64(plain->data() + i * 8);
        if (idx < data_block_count_ && generation != 0) {
          table[idx] = generation;
        }
      }
    }
    if (valid && slot_epoch > best_epoch) {
      best_epoch = slot_epoch;
      best_table = std::move(table);
    }
  }
  if (best_epoch == 0) {
    if (counter != 0) {
      return ciobase::Tampered(
          "generation table missing: host rolled back past the last flush");
    }
    // Fresh device, fresh counter: empty table is the truth.
    generations_.clear();
    last_epoch_ = 0;
    return ciobase::OkStatus();
  }
  if (best_epoch < counter) {
    return ciobase::Tampered(
        "generation table epoch behind the rollback counter");
  }
  generations_ = std::move(best_table);
  last_epoch_ = best_epoch;
  options_.rollback_counter->BumpTo(best_epoch);
  ++stats_.table_loads;
  stats_.entries_loaded += generations_.size();
  return ciobase::OkStatus();
}

ciobase::Status EncryptedBlockClient::Remount() {
  CIO_RETURN_IF_ERROR(geometry_status_);
  session_established_ = false;
  if (!options_.durable_generations) {
    // A rebooted volatile client has no memory of past generations; it
    // re-adopts whatever authenticates. (This is exactly the gap the
    // durable mode closes — see the rollback-across-remount test.)
    generations_.clear();
    session_established_ = true;
    return ciobase::OkStatus();
  }
  generations_.clear();
  CIO_RETURN_IF_ERROR(LoadGenerations());
  // Burn a fresh epoch as this session's nonce salt: persist + flush +
  // bump. Generations handed to writes that a later crash discards are
  // then never reissued (the next mount burns a higher epoch).
  CIO_RETURN_IF_ERROR(PersistGenerations());
  CIO_RETURN_IF_ERROR(inner_->Flush());
  options_.rollback_counter->BumpTo(last_epoch_);
  session_salt_ = last_epoch_;
  session_writes_ = 0;
  session_established_ = true;
  return ciobase::OkStatus();
}

ciobase::Status EncryptedBlockClient::Flush() {
  CIO_RETURN_IF_ERROR(EnsureSession());
  if (!options_.durable_generations) {
    return inner_->Flush();
  }
  bool persisted = false;
  if (dirty_) {
    CIO_RETURN_IF_ERROR(PersistGenerations());
    persisted = true;
  }
  CIO_RETURN_IF_ERROR(inner_->Flush());
  if (persisted) {
    options_.rollback_counter->BumpTo(last_epoch_);
    ++stats_.table_flushes;
  }
  return ciobase::OkStatus();
}

uint64_t EncryptedBlockClient::Generation(uint64_t lba) const {
  auto it = generations_.find(lba);
  return it == generations_.end() ? 0 : it->second;
}

}  // namespace cioblock
