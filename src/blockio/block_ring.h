// Hardened block I/O boundary: the paper's §3.3 ("the first boundary would
// be at a low-level interface, e.g. disk driver or block layer") built with
// the same principles as the L2 network transport:
//
//   * Stateless, strictly FIFO: submission i completes as completion i.
//     There are no request ids, no completion reordering, and therefore no
//     temporal state for the host to confuse.
//   * Fixed geometry: block size and ring size are launch-time constants;
//     counters are monotonic u64s; every index is masked.
//   * Single-fetch completions: the guest reads a completion slot once into
//     private memory; lengths are clamped to the fixed block size.
//
// The host block device stores whatever bytes the guest hands it — the
// guest encrypts (crypt_client.h), so the device only ever holds
// ciphertext. What the host *does* see is the access pattern (LBA, size,
// timing), which is exactly the storage observability the paper points at
// [3]; the device reports those to the observability log.

#ifndef SRC_BLOCKIO_BLOCK_RING_H_
#define SRC_BLOCKIO_BLOCK_RING_H_

#include <vector>

#include "src/base/clock.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/tee/shared_region.h"

namespace cioblock {

enum class BlockOp : uint32_t { kRead = 1, kWrite = 2, kFlush = 3 };

struct BlockRingConfig {
  uint32_t block_size = 4096;   // payload bytes per op (power of two)
  uint32_t ring_slots = 64;     // power of two
  uint64_t block_count = 4096;  // device capacity in blocks

  bool Valid() const;
  // Slot = 32-byte header + block payload.
  uint64_t SlotSize() const { return 32 + block_size; }
  uint64_t RegionSize() const;
};

struct BlockLayout {
  explicit BlockLayout(const BlockRingConfig& config);
  uint64_t SubmitProduced() const { return 0; }
  uint64_t SubmitConsumed() const { return 64; }
  uint64_t CompleteProduced() const { return 128; }
  uint64_t CompleteConsumed() const { return 192; }
  uint64_t SubmitSlot(uint64_t index) const;
  uint64_t CompleteSlot(uint64_t index) const;

  uint64_t slots;
  uint64_t slot_size;
  uint64_t submit_ring;
  uint64_t complete_ring;
  uint64_t total;
};

// --- Guest side ----------------------------------------------------------------

class BlockClient {
 public:
  virtual ~BlockClient() = default;
  virtual ciobase::Status WriteBlock(uint64_t lba, ciobase::ByteSpan data) = 0;
  virtual ciobase::Result<ciobase::Buffer> ReadBlock(uint64_t lba) = 0;
  virtual ciobase::Status Flush() = 0;
  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;
};

class HostBlockDevice;

// Synchronous ring client: submit, let the host device run, reap.
class RingBlockClient final : public BlockClient {
 public:
  RingBlockClient(ciotee::SharedRegion* region, BlockRingConfig config,
                  HostBlockDevice* device, ciobase::CostModel* costs);

  ciobase::Status WriteBlock(uint64_t lba, ciobase::ByteSpan data) override;
  ciobase::Result<ciobase::Buffer> ReadBlock(uint64_t lba) override;
  ciobase::Status Flush() override;
  uint32_t block_size() const override { return config_.block_size; }
  uint64_t block_count() const override { return config_.block_count; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t clamped_completions = 0;
    uint64_t failed_completions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  ciobase::Status Submit(BlockOp op, uint64_t lba, ciobase::ByteSpan data);
  // Waits (by running the host device) for the next FIFO completion.
  ciobase::Result<ciobase::Buffer> Reap(uint32_t expected_len);

  ciotee::SharedRegion* region_;
  BlockRingConfig config_;
  BlockLayout layout_;
  HostBlockDevice* device_;
  ciobase::CostModel* costs_;
  uint64_t submit_produced_ = 0;
  uint64_t complete_consumed_ = 0;
  Stats stats_;
};

// --- Host side -----------------------------------------------------------------

class HostBlockDevice {
 public:
  HostBlockDevice(ciotee::SharedRegion* region, BlockRingConfig config,
                  ciohost::Adversary* adversary,
                  ciohost::ObservabilityLog* observability,
                  ciobase::SimClock* clock);

  // Executes pending submissions, pushes completions.
  void Poll();

  struct Stats {
    uint64_t ops = 0;
    uint64_t bad_lba = 0;
  };
  const Stats& stats() const { return stats_; }

  // Direct image access for tests: what the host actually stores.
  ciobase::ByteSpan RawBlock(uint64_t lba) const;

 private:
  ciotee::SharedRegion* region_;
  BlockRingConfig config_;
  BlockLayout layout_;
  ciohost::Adversary* adversary_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;
  std::vector<ciobase::Buffer> image_;
  uint64_t submit_consumed_ = 0;
  uint64_t complete_produced_ = 0;
  Stats stats_;
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_BLOCK_RING_H_
