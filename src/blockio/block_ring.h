// Hardened block I/O boundary: the paper's §3.3 ("the first boundary would
// be at a low-level interface, e.g. disk driver or block layer") built with
// the same principles as the L2 network transport:
//
//   * Stateless, strictly FIFO: submission i completes as completion i.
//     There are no request ids, no completion reordering, and therefore no
//     temporal state for the host to confuse.
//   * Fixed geometry: block size and ring size are launch-time constants;
//     counters are monotonic u64s; every index is masked.
//   * Single-fetch completions: the guest reads a completion slot once into
//     private memory; lengths are clamped to the fixed block size.
//
// The host block device stores whatever bytes the guest hands it — the
// guest encrypts (crypt_client.h), so the device only ever holds
// ciphertext. What the host *does* see is the access pattern (LBA, size,
// timing), which is exactly the storage observability the paper points at
// [3]; the device reports those to the observability log.
//
// Fault model (PR-2 architecture extended to storage): the device keeps a
// write-back cache of unflushed writes, which makes kFlush semantically
// real — a simulated host crash discards the cache, so only flushed state
// survives. The device also consults the adversary's transient fault
// windows (swallowed doorbells, stalled/garbage counters, torn writes,
// dropped completions, bit rot, link kill) and can snapshot/restore its
// durable image to model a rollback attack. The guest client mirrors the
// L2 recovery machinery: a LinkWatchdog notices the stall, the ring is
// reset under a new epoch, and a changed host boot count (the host
// restarted, losing unflushed writes) latches a needs-remount condition
// that the store above resolves by remounting the whole stack.

#ifndef SRC_BLOCKIO_BLOCK_RING_H_
#define SRC_BLOCKIO_BLOCK_RING_H_

#include <map>
#include <vector>

#include "src/base/clock.h"
#include "src/base/recovery.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/tee/shared_region.h"

namespace cioblock {

enum class BlockOp : uint32_t { kRead = 1, kWrite = 2, kFlush = 3 };

struct BlockRingConfig {
  uint32_t block_size = 4096;   // payload bytes per op (power of two)
  uint32_t ring_slots = 64;     // power of two
  uint64_t block_count = 4096;  // device capacity in blocks

  bool Valid() const;
  // Slot = 32-byte header + block payload.
  uint64_t SlotSize() const { return 32 + block_size; }
  uint64_t RegionSize() const;
};

struct BlockLayout {
  explicit BlockLayout(const BlockRingConfig& config);
  uint64_t SubmitProduced() const { return 0; }
  uint64_t SubmitConsumed() const { return 64; }
  uint64_t CompleteProduced() const { return 128; }
  uint64_t CompleteConsumed() const { return 192; }
  // Reattach handshake cells (PR-2 epoch scheme, plus a host boot count so
  // the guest can tell "host stalled" from "host restarted and forgot my
  // unflushed writes").
  uint64_t GuestEpoch() const { return 224; }
  uint64_t HostEpoch() const { return 232; }
  uint64_t BootCount() const { return 240; }
  uint64_t SubmitSlot(uint64_t index) const;
  uint64_t CompleteSlot(uint64_t index) const;

  uint64_t slots;
  uint64_t slot_size;
  uint64_t submit_ring;
  uint64_t complete_ring;
  uint64_t total;
};

// --- Guest side ----------------------------------------------------------------

class BlockClient {
 public:
  virtual ~BlockClient() = default;
  virtual ciobase::Status WriteBlock(uint64_t lba, ciobase::ByteSpan data) = 0;
  virtual ciobase::Result<ciobase::Buffer> ReadBlock(uint64_t lba) = 0;
  virtual ciobase::Status Flush() = 0;
  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;
};

class HostBlockDevice;

// Synchronous ring client: submit, kick the host device, reap.
//
// With recovery enabled, a completion that never arrives trips the
// LinkWatchdog: the client resets the ring under a fresh epoch and resubmits
// (bounded by the reset budget). If the host's boot count changed across a
// reset the host crashed — unflushed writes are gone and everything the
// layers above cached about the disk is suspect, so the client fails all
// operations with kLinkReset until Reattach() is called (by the store's
// Remount path).
class RingBlockClient final : public BlockClient {
 public:
  RingBlockClient(ciotee::SharedRegion* region, BlockRingConfig config,
                  HostBlockDevice* device, ciobase::CostModel* costs,
                  ciobase::RecoveryConfig recovery = {});

  ciobase::Status WriteBlock(uint64_t lba, ciobase::ByteSpan data) override;
  ciobase::Result<ciobase::Buffer> ReadBlock(uint64_t lba) override;
  ciobase::Status Flush() override;
  uint32_t block_size() const override { return config_.block_size; }
  uint64_t block_count() const override { return config_.block_count; }

  // True after a host restart was detected; every op returns kLinkReset
  // until Reattach().
  bool needs_remount() const { return needs_remount_; }
  // Acknowledges a detected host restart: resets the ring under a fresh
  // epoch and resumes issuing ops. The caller is responsible for remounting
  // the layers above (their cached view of the disk is stale).
  void Reattach();

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t clamped_completions = 0;
    uint64_t failed_completions = 0;
    uint64_t ring_resets = 0;
    uint64_t watchdog_fires = 0;
    uint64_t host_restarts = 0;
    uint64_t incoherent_counters = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Modeled time per empty poll iteration while waiting on the host.
  static constexpr uint64_t kPollIntervalNs = 1000;

  ciobase::Status Submit(BlockOp op, uint64_t lba, ciobase::ByteSpan data);
  // Waits (by kicking the host device) for the next FIFO completion.
  ciobase::Result<ciobase::Buffer> Reap(uint32_t expected_len);
  // Submit + reap with watchdog-driven reset-and-resubmit on kLinkReset.
  ciobase::Result<ciobase::Buffer> Execute(BlockOp op, uint64_t lba,
                                           ciobase::ByteSpan data,
                                           uint32_t expected_len);
  // Abandons in-flight state, bumps the epoch, republishes zeroed guest
  // counters, and checks the host boot count for a restart.
  void ResetRing();

  ciotee::SharedRegion* region_;
  BlockRingConfig config_;
  BlockLayout layout_;
  HostBlockDevice* device_;
  ciobase::CostModel* costs_;
  ciobase::RecoveryConfig recovery_;
  ciobase::LinkWatchdog watchdog_;
  uint64_t submit_produced_ = 0;
  uint64_t complete_consumed_ = 0;
  uint64_t epoch_ = 0;
  uint64_t last_boot_ = 0;
  bool needs_remount_ = false;
  Stats stats_;
};

// --- Host side -----------------------------------------------------------------

class HostBlockDevice {
 public:
  HostBlockDevice(ciotee::SharedRegion* region, BlockRingConfig config,
                  ciohost::Adversary* adversary,
                  ciohost::ObservabilityLog* observability,
                  ciobase::SimClock* clock);

  // Guest doorbell: runs the device unless the fault model swallows it.
  void Kick();
  // Executes pending submissions, pushes completions.
  void Poll();

  // --- Storage fault machinery ------------------------------------------------

  // Models a host crash: every unflushed (cached) write is discarded, the
  // device forgets its ring positions, bumps its boot count, and waits for
  // the guest to reattach with a fresh epoch.
  void SimulateCrash();
  // Arms a deterministic crash after the next `k` executed writes (0
  // disarms). Re-arms itself after each crash, so a workload crosses every
  // crash point k writes apart.
  void CrashAfterWrites(uint64_t k) {
    crash_after_writes_ = k;
    writes_since_crash_ = 0;
  }
  // Rollback attack: capture / restore the durable image (the cache is
  // dropped on restore — a restored disk has no pending writes).
  void SnapshotImage();
  void RestoreSnapshot();

  // Test support: corrupt durable bytes directly (bit rot / torn metadata
  // for the fsck fuzz tests). Returns false if lba/offset is out of range
  // or the block was never written.
  bool CorruptRawByte(uint64_t lba, size_t offset, uint8_t xor_mask);
  bool TruncateRawBlock(uint64_t lba, size_t new_size);

  struct Stats {
    uint64_t ops = 0;
    uint64_t bad_lba = 0;
    uint64_t bad_op = 0;
    uint64_t flushes = 0;
    uint64_t cached_writes = 0;
    uint64_t crashes = 0;
    uint64_t kicks_swallowed = 0;
    uint64_t completions_dropped = 0;
    uint64_t torn_writes = 0;
    uint64_t bit_rot_reads = 0;
    uint64_t epoch_adoptions = 0;
  };
  const Stats& stats() const { return stats_; }
  uint64_t boot_count() const { return boot_count_; }

  // Direct image access for tests: the host's current view of the block
  // (write-back cache first, then the durable image).
  ciobase::ByteSpan RawBlock(uint64_t lba) const;
  // Only the durable (flushed) bytes — what survives a crash.
  ciobase::ByteSpan RawDurableBlock(uint64_t lba) const;

 private:
  bool Faulted(ciohost::FaultStrategy strategy) const;
  // Adopts a changed guest epoch: zero this side's ring positions and
  // publish the current boot count.
  void AdoptGuestEpoch();
  void FlushCache();

  ciotee::SharedRegion* region_;
  BlockRingConfig config_;
  BlockLayout layout_;
  ciohost::Adversary* adversary_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;
  std::vector<ciobase::Buffer> image_;        // durable (flushed) state
  std::map<uint64_t, ciobase::Buffer> cache_; // unflushed writes
  std::vector<ciobase::Buffer> snapshot_;     // rollback attack material
  uint64_t submit_consumed_ = 0;
  uint64_t complete_produced_ = 0;
  uint64_t epoch_ = 0;
  uint64_t boot_count_ = 1;
  bool awaiting_reattach_ = false;
  uint64_t crash_after_writes_ = 0;
  uint64_t writes_since_crash_ = 0;
  Stats stats_;
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_BLOCK_RING_H_
