// ConfidentialStore: the full §3.3 dual-boundary storage stack.
//
//   app compartment          storage compartment            host
//   ───────────────          ───────────────────            ────
//   Put/Get/Delete   ──►     ExtentFs (untrusted      ──►   block device
//   + AEAD of values  file   by the app)              ring  (ciphertext
//     before crossing  ops                                   image only)
//
// Mirrors the network design one-to-one: the low boundary is the hardened
// block ring (masked, stateless, FIFO); the high boundary is a
// single-distrust compartment crossing where the app allocates and seals
// values before handing them to the filesystem. A compromised filesystem
// can drop or withhold objects (availability) and observe object names and
// sizes (observability) but can neither read nor undetectably modify
// values. Encryption-at-rest below the FS additionally blinds the host.
//
// Recovery: with options.recovery.enabled the ring client rides out
// transient host faults transparently. A host *crash* (restart with its
// write-back cache lost) surfaces as kLinkReset with needs_remount()
// latched on the ring client; the application then calls Remount(), which
// reattaches the ring, reloads (and freshness-checks) the generation
// table, and replays the filesystem journal. With options.rollback_counter
// set, generations are durable: a host that rolls the image back to an
// older snapshot is caught at Remount (or at first read) with kTampered.

#ifndef SRC_BLOCKIO_STORE_H_
#define SRC_BLOCKIO_STORE_H_

#include <memory>

#include "src/blockio/crypt_client.h"
#include "src/blockio/extent_fs.h"
#include "src/tee/compartment.h"

namespace cioblock {

class ConfidentialStore {
 public:
  struct Options {
    BlockRingConfig ring;
    ciobase::Buffer disk_key;   // encryption at rest (below the FS)
    ciobase::Buffer value_key;  // app-side sealing (above the FS)
    uint32_t inode_count = 64;
    // Ring-level fault recovery (watchdog + reset-and-reattach).
    ciobase::RecoveryConfig recovery;
    // Non-null enables durable generations (rollback detection across
    // remounts) anchored in this hardware monotonic counter.
    ciotee::MonotonicCounter* rollback_counter = nullptr;
  };

  // Builds the whole stack: shared region, host device, ring client,
  // encrypted client, filesystem in the storage compartment.
  ConfidentialStore(ciotee::TeeMemory* memory,
                    ciotee::CompartmentManager* compartments,
                    ciotee::CompartmentId app, ciotee::CompartmentId storage,
                    ciobase::CostModel* costs,
                    ciohost::Adversary* adversary,
                    ciohost::ObservabilityLog* observability,
                    ciobase::SimClock* clock, Options options);

  ciobase::Status Format();

  ciobase::Status Put(std::string_view name, ciobase::ByteSpan value);
  // kTampered if the FS/host returned a forged or stale value.
  ciobase::Result<ciobase::Buffer> Get(std::string_view name);
  ciobase::Status Delete(std::string_view name);
  std::vector<std::string> List();
  // Durability barrier: everything acknowledged before a successful Flush
  // survives a host crash.
  ciobase::Status Flush();
  // Recovery path after a host restart (ops returning kLinkReset with
  // ring_client()->needs_remount()): reattaches the ring, reloads the
  // generation table (kTampered on rollback of the image), and remounts
  // the filesystem (journal replay).
  ciobase::Status Remount();

  HostBlockDevice* host_device() { return device_.get(); }
  RingBlockClient* ring_client() { return ring_client_.get(); }
  EncryptedBlockClient* crypt_client() { return crypt_client_.get(); }
  ExtentFs* fs() { return fs_.get(); }

  struct Stats {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t seal_failures = 0;
    uint64_t remounts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  ciotee::CompartmentManager* compartments_;
  ciotee::CompartmentId app_;
  ciotee::CompartmentId storage_;
  ciobase::CostModel* costs_;
  Options options_;

  std::unique_ptr<ciotee::SharedRegion> shared_;
  std::unique_ptr<HostBlockDevice> device_;
  std::unique_ptr<RingBlockClient> ring_client_;
  std::unique_ptr<EncryptedBlockClient> crypt_client_;
  std::unique_ptr<ExtentFs> fs_;
  uint64_t value_counter_ = 0;  // nonce uniqueness across Puts
  Stats stats_;
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_STORE_H_
