// EncryptedBlockClient: AEAD encryption-at-rest above any BlockClient.
//
// The guest holds the disk key; the host block device only ever stores
// sealed blocks. The AEAD nonce is derived from the LBA and a per-block
// write generation (stored in the block header), and the LBA is bound into
// the associated data — so a malicious host can neither forge block
// contents nor swap blocks around (a relocated block fails authentication),
// and replaying an *old* version of a block is detectable by callers that
// track generations (the extent FS checks monotonicity for its metadata).

#ifndef SRC_BLOCKIO_CRYPT_CLIENT_H_
#define SRC_BLOCKIO_CRYPT_CLIENT_H_

#include <map>

#include "src/blockio/block_ring.h"
#include "src/crypto/aead.h"

namespace cioblock {

class EncryptedBlockClient final : public BlockClient {
 public:
  // Stored block = [generation u64][sealed_len u32][ciphertext || tag].
  // Usable plaintext per block = inner block_size - kOverhead.
  static constexpr uint32_t kOverhead = 12 + ciocrypto::kAeadTagSize;

  // `costs` may be null (AEAD work then goes unmodeled; tests only).
  EncryptedBlockClient(BlockClient* inner, ciobase::ByteSpan key,
                       ciobase::CostModel* costs = nullptr);

  ciobase::Status WriteBlock(uint64_t lba, ciobase::ByteSpan data) override;
  // Returns the decrypted plaintext; kTampered if the host corrupted,
  // forged, or relocated the block. Never-written blocks read as empty.
  ciobase::Result<ciobase::Buffer> ReadBlock(uint64_t lba) override;
  ciobase::Status Flush() override { return inner_->Flush(); }
  uint32_t block_size() const override {
    return inner_->block_size() - kOverhead;
  }
  uint64_t block_count() const override { return inner_->block_count(); }

  // Write generation last observed for `lba` (0 = never seen).
  uint64_t Generation(uint64_t lba) const;

 private:
  ciobase::Buffer NonceFor(uint64_t lba, uint64_t generation) const;

  BlockClient* inner_;
  ciobase::Buffer key_;
  ciobase::CostModel* costs_;
  // Guest-private generation tracking (anti-rollback for reads we issue).
  std::map<uint64_t, uint64_t> generations_;
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_CRYPT_CLIENT_H_
