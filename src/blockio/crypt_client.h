// EncryptedBlockClient: AEAD encryption-at-rest above any BlockClient.
//
// The guest holds the disk key; the host block device only ever stores
// sealed blocks. Every write gets a globally unique generation number (so
// AEAD nonces never repeat, even across host crashes that discard writes),
// and the LBA, generation, and length are bound into the associated data —
// a malicious host can neither forge block contents nor swap blocks around
// (a relocated block fails authentication), and replaying an *old* version
// of a block fails the exact-generation check.
//
// Freshness across remounts (the SGX-LKL property): with durable
// generations enabled, the generation table itself is persisted in sealed
// "epoch blocks" — two alternating table slots at the head of the inner
// device, each sealed under an epoch number that is bound to a hardware
// MonotonicCounter (src/tee/monotonic_counter.h). Flush order is
//   write table (epoch e) -> inner flush -> counter := e
// so the durable table's epoch is always the counter value (or counter+1
// if the host died between the flush and the bump, which Remount accepts
// and adopts). A host that restores an older image presents a table whose
// epoch is *behind* the counter: Remount fails with kTampered, and so does
// rollback of any individual data block (its stored generation no longer
// matches the loaded table). Each (re)mount also burns a fresh epoch as
// the session's nonce salt, so generations assigned to writes that a crash
// later discards are never reissued.

#ifndef SRC_BLOCKIO_CRYPT_CLIENT_H_
#define SRC_BLOCKIO_CRYPT_CLIENT_H_

#include <map>

#include "src/blockio/block_ring.h"
#include "src/crypto/aead.h"
#include "src/tee/monotonic_counter.h"

namespace cioblock {

struct CryptClientOptions {
  // Persist the generation table in sealed epoch blocks at the head of the
  // inner device. Requires rollback_counter. Off by default: the volatile
  // mode matches the pre-durability behavior (rollback detected only
  // within one session).
  bool durable_generations = false;
  ciotee::MonotonicCounter* rollback_counter = nullptr;
};

class EncryptedBlockClient final : public BlockClient {
 public:
  // Stored block = [generation u64][sealed_len u32][ciphertext || tag].
  // Usable plaintext per block = inner block_size - kOverhead.
  static constexpr uint32_t kOverhead = 12 + ciocrypto::kAeadTagSize;

  // `costs` may be null (AEAD work then goes unmodeled; tests only).
  EncryptedBlockClient(BlockClient* inner, ciobase::ByteSpan key,
                       ciobase::CostModel* costs = nullptr,
                       CryptClientOptions options = {});

  ciobase::Status WriteBlock(uint64_t lba, ciobase::ByteSpan data) override;
  // Returns the decrypted plaintext; kTampered if the host corrupted,
  // forged, relocated, or rolled back the block. Never-written blocks read
  // as empty.
  ciobase::Result<ciobase::Buffer> ReadBlock(uint64_t lba) override;
  // Durable mode: persists the generation table (epoch e), flushes the
  // inner device, then bumps the rollback counter to e — the commit point
  // for everything written since the previous flush.
  ciobase::Status Flush() override;
  uint32_t block_size() const override { return usable_block_size_; }
  uint64_t block_count() const override { return data_block_count_; }

  // Drops the in-memory generation state and reloads it from the epoch
  // blocks (no-op load in volatile mode). kTampered if the persisted table
  // is missing or its epoch is behind the rollback counter (host rolled
  // the image back). Called by ConfidentialStore::Remount after a host
  // restart; safe to call on a freshly formatted device.
  ciobase::Status Remount();

  // kInvalidArgument when the inner geometry cannot host this layer
  // (block size <= kOverhead, or no room for the generation table).
  ciobase::Status geometry_status() const { return geometry_status_; }
  // Inner blocks reserved at the head of the device for the epoch-block
  // table slots (0 in volatile mode).
  uint64_t reserved_blocks() const { return reserved_blocks_; }

  // Write generation last observed for `lba` (0 = never seen).
  uint64_t Generation(uint64_t lba) const;

  struct Stats {
    uint64_t table_flushes = 0;
    uint64_t table_loads = 0;
    uint64_t entries_loaded = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Table chunks get sealed under synthetic LBAs far above any data LBA so
  // their nonces/AAD can never collide with data blocks.
  static constexpr uint64_t kTableLbaBase = 1ULL << 62;

  ciobase::Buffer NonceFor(uint64_t lba, uint64_t generation) const;
  ciobase::Buffer SealStored(uint64_t lba, uint64_t generation,
                             ciobase::ByteSpan plaintext) const;
  ciobase::Result<ciobase::Buffer> OpenStored(uint64_t lba,
                                              uint64_t generation,
                                              ciobase::ByteSpan stored) const;
  // Durable mode: next globally unique write generation.
  uint64_t NextGeneration();
  // Lazily establishes the durable session (initial Remount) on first use.
  ciobase::Status EnsureSession();
  // Writes the full table as epoch `last_epoch_ + 1` into the alternate
  // slot (no inner flush; Flush()/Remount() sequence that).
  ciobase::Status PersistGenerations();
  // Loads the newest valid table slot; enforces the counter bound.
  ciobase::Status LoadGenerations();

  uint64_t EntriesPerChunk() const { return usable_block_size_ / 8; }
  uint64_t ChunksPerSlot() const { return reserved_blocks_ / 2; }

  BlockClient* inner_;
  ciobase::Buffer key_;
  ciobase::CostModel* costs_;
  CryptClientOptions options_;
  ciobase::Status geometry_status_;
  uint32_t usable_block_size_ = 0;
  uint64_t data_block_count_ = 0;
  uint64_t reserved_blocks_ = 0;
  // Guest-private generation tracking (anti-rollback). Exact match on
  // read; persisted through the epoch blocks in durable mode.
  std::map<uint64_t, uint64_t> generations_;
  bool dirty_ = false;             // generations changed since last persist
  bool session_established_ = false;
  uint64_t session_salt_ = 0;      // epoch burned at mount; high gen bits
  uint64_t session_writes_ = 0;    // low gen bits (volatile: whole gen)
  uint64_t last_epoch_ = 0;        // last table epoch written
  Stats stats_;
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_CRYPT_CLIENT_H_
