#include "src/blockio/store.h"

#include <cstring>

namespace cioblock {

ConfidentialStore::ConfidentialStore(
    ciotee::TeeMemory* memory, ciotee::CompartmentManager* compartments,
    ciotee::CompartmentId app, ciotee::CompartmentId storage,
    ciobase::CostModel* costs, ciohost::Adversary* adversary,
    ciohost::ObservabilityLog* observability, ciobase::SimClock* clock,
    Options options)
    : compartments_(compartments),
      app_(app),
      storage_(storage),
      costs_(costs),
      options_(std::move(options)) {
  // Caller-provided secrets may be any length; the AEAD needs exactly
  // kAeadKeySize bytes (disk_key is normalized by EncryptedBlockClient).
  options_.value_key = ciocrypto::DeriveAeadKey(options_.value_key);
  shared_ = std::make_unique<ciotee::SharedRegion>(
      memory, options_.ring.RegionSize(), "block-ring");
  device_ = std::make_unique<HostBlockDevice>(shared_.get(), options_.ring,
                                              adversary, observability, clock);
  ring_client_ = std::make_unique<RingBlockClient>(
      shared_.get(), options_.ring, device_.get(), costs_,
      options_.recovery);
  CryptClientOptions crypt_options;
  crypt_options.durable_generations = options_.rollback_counter != nullptr;
  crypt_options.rollback_counter = options_.rollback_counter;
  crypt_client_ = std::make_unique<EncryptedBlockClient>(
      ring_client_.get(), options_.disk_key, costs_, crypt_options);
  fs_ = std::make_unique<ExtentFs>(crypt_client_.get());
}

ciobase::Status ConfidentialStore::Format() {
  CIO_RETURN_IF_ERROR(crypt_client_->geometry_status());
  compartments_->SwitchTo(storage_);
  ciobase::Status status = fs_->Format(options_.inode_count);
  compartments_->SwitchTo(app_);
  return status;
}

ciobase::Status ConfidentialStore::Flush() {
  compartments_->SwitchTo(storage_);
  ciobase::Status status = fs_->Flush();
  compartments_->SwitchTo(app_);
  return status;
}

ciobase::Status ConfidentialStore::Remount() {
  compartments_->SwitchTo(storage_);
  // Order matters: a live ring first (the layers above talk through it),
  // then the freshness-checked generation table, then journal replay.
  ring_client_->Reattach();
  ciobase::Status status = crypt_client_->Remount();
  if (status.ok()) {
    status = fs_->Mount();
  }
  compartments_->SwitchTo(app_);
  if (status.ok()) {
    ++stats_.remounts;
  }
  return status;
}

ciobase::Status ConfidentialStore::Put(std::string_view name,
                                       ciobase::ByteSpan value) {
  // Seal in the app compartment: the FS (and everything below it) only
  // ever sees ciphertext. Nonce = per-store counter; name bound as AAD.
  ciobase::Buffer nonce(ciocrypto::kAeadNonceSize, 0);
  ciobase::StoreLe64(nonce.data(), ++value_counter_);
  ciobase::Buffer aad(name.begin(), name.end());
  costs_->ChargeAead(value.size());
  ciobase::Buffer sealed = ciocrypto::AeadSeal(options_.value_key, nonce,
                                               aad, value);
  // Prefix the nonce so Get can reconstruct it.
  ciobase::Buffer stored = nonce;
  ciobase::Append(stored, sealed);

  compartments_->SwitchTo(storage_);
  ciobase::Status status = fs_->WriteFile(name, stored);
  compartments_->SwitchTo(app_);
  if (status.ok()) {
    ++stats_.puts;
  }
  return status;
}

ciobase::Result<ciobase::Buffer> ConfidentialStore::Get(
    std::string_view name) {
  compartments_->SwitchTo(storage_);
  auto stored = fs_->ReadFile(name);
  compartments_->SwitchTo(app_);
  if (!stored.ok()) {
    return stored.status();
  }
  if (stored->size() < ciocrypto::kAeadNonceSize + ciocrypto::kAeadTagSize) {
    ++stats_.seal_failures;
    return ciobase::Tampered("stored value truncated");
  }
  ciobase::ByteSpan nonce(stored->data(), ciocrypto::kAeadNonceSize);
  ciobase::ByteSpan sealed(stored->data() + ciocrypto::kAeadNonceSize,
                           stored->size() - ciocrypto::kAeadNonceSize);
  ciobase::Buffer aad(name.begin(), name.end());
  costs_->ChargeAead(sealed.size());
  auto value = ciocrypto::AeadOpen(options_.value_key, nonce, aad, sealed);
  if (!value.ok()) {
    ++stats_.seal_failures;
    return ciobase::Tampered("value authentication failed");
  }
  ++stats_.gets;
  return value;
}

ciobase::Status ConfidentialStore::Delete(std::string_view name) {
  compartments_->SwitchTo(storage_);
  ciobase::Status status = fs_->DeleteFile(name);
  compartments_->SwitchTo(app_);
  return status;
}

std::vector<std::string> ConfidentialStore::List() {
  compartments_->SwitchTo(storage_);
  std::vector<std::string> names = fs_->ListFiles();
  compartments_->SwitchTo(app_);
  return names;
}

}  // namespace cioblock
