#include "src/blockio/block_ring.h"

#include <cassert>

#include "src/base/bits.h"

namespace cioblock {

// Submit slot header: [op u32][len u32][lba u64][pad 16] then payload.
// Complete slot header: [status u32][len u32][pad 24] then payload.

bool BlockRingConfig::Valid() const {
  return ciobase::IsPowerOfTwo(block_size) && ciobase::IsPowerOfTwo(ring_slots) &&
         block_count > 0;
}

uint64_t BlockRingConfig::RegionSize() const {
  return BlockLayout(*this).total;
}

BlockLayout::BlockLayout(const BlockRingConfig& config)
    : slots(config.ring_slots), slot_size(config.SlotSize()) {
  submit_ring = 256;
  complete_ring = submit_ring + slots * slot_size;
  total = complete_ring + slots * slot_size;
}

uint64_t BlockLayout::SubmitSlot(uint64_t index) const {
  return submit_ring + ciobase::MaskIndex(index, slots) * slot_size;
}

uint64_t BlockLayout::CompleteSlot(uint64_t index) const {
  return complete_ring + ciobase::MaskIndex(index, slots) * slot_size;
}

// --- RingBlockClient -------------------------------------------------------------

RingBlockClient::RingBlockClient(ciotee::SharedRegion* region,
                                 BlockRingConfig config,
                                 HostBlockDevice* device,
                                 ciobase::CostModel* costs)
    : region_(region),
      config_(config),
      layout_(config),
      device_(device),
      costs_(costs) {
  assert(config.Valid());
  assert(region->size() >= layout_.total);
}

ciobase::Status RingBlockClient::Submit(BlockOp op, uint64_t lba,
                                        ciobase::ByteSpan data) {
  if (lba >= config_.block_count) {
    return ciobase::OutOfRange("lba beyond device");
  }
  if (data.size() > config_.block_size) {
    return ciobase::InvalidArgument("payload exceeds block size");
  }
  uint64_t consumed = region_->GuestReadLe64(layout_.SubmitConsumed());
  if (submit_produced_ - std::min(consumed, submit_produced_) >=
      layout_.slots) {
    return ciobase::ResourceExhausted("submit ring full");
  }
  uint64_t slot = layout_.SubmitSlot(submit_produced_);
  uint8_t header[32] = {0};
  ciobase::StoreLe32(header, static_cast<uint32_t>(op));
  ciobase::StoreLe32(header + 4, static_cast<uint32_t>(data.size()));
  ciobase::StoreLe64(header + 8, lba);
  region_->GuestWrite(slot, header);
  if (!data.empty()) {
    costs_->ChargeCopy(data.size());
    region_->GuestWrite(slot + 32, data);
  }
  ++submit_produced_;
  region_->GuestWriteLe64(layout_.SubmitProduced(), submit_produced_);
  return ciobase::OkStatus();
}

ciobase::Result<ciobase::Buffer> RingBlockClient::Reap(uint32_t expected_len) {
  // Strict FIFO: run the host device until our completion index appears.
  for (int spins = 0; spins < 1024; ++spins) {
    costs_->ChargeRingPoll();
    device_->Poll();
    uint64_t produced = region_->GuestReadLe64(layout_.CompleteProduced());
    uint64_t pending = produced - complete_consumed_;
    if (pending == 0 || pending > (1ULL << 63)) {
      continue;
    }
    uint64_t slot = layout_.CompleteSlot(complete_consumed_);
    // Single fetch of the whole completion slot.
    ciobase::Buffer raw(32 + expected_len);
    costs_->ChargeCopy(raw.size());
    region_->GuestRead(slot, raw);
    ++complete_consumed_;
    region_->GuestWriteLe64(layout_.CompleteConsumed(), complete_consumed_);

    uint32_t status = ciobase::LoadLe32(raw.data());
    uint32_t len = ciobase::LoadLe32(raw.data() + 4);
    if (len > expected_len) {
      ++stats_.clamped_completions;
      len = expected_len;
    }
    if (status != 0) {
      ++stats_.failed_completions;
      return ciobase::HostViolation("device reported failure");
    }
    return ciobase::Buffer(raw.begin() + 32, raw.begin() + 32 + len);
  }
  return ciobase::Unavailable("completion never arrived");
}

ciobase::Status RingBlockClient::WriteBlock(uint64_t lba,
                                            ciobase::ByteSpan data) {
  CIO_RETURN_IF_ERROR(Submit(BlockOp::kWrite, lba, data));
  ++stats_.writes;
  auto done = Reap(0);
  return done.status();
}

ciobase::Result<ciobase::Buffer> RingBlockClient::ReadBlock(uint64_t lba) {
  CIO_RETURN_IF_ERROR(Submit(BlockOp::kRead, lba, {}));
  ++stats_.reads;
  return Reap(config_.block_size);
}

ciobase::Status RingBlockClient::Flush() {
  CIO_RETURN_IF_ERROR(Submit(BlockOp::kFlush, 0, {}));
  return Reap(0).status();
}

// --- HostBlockDevice ---------------------------------------------------------------

HostBlockDevice::HostBlockDevice(ciotee::SharedRegion* region,
                                 BlockRingConfig config,
                                 ciohost::Adversary* adversary,
                                 ciohost::ObservabilityLog* observability,
                                 ciobase::SimClock* clock)
    : region_(region),
      config_(config),
      layout_(config),
      adversary_(adversary),
      observability_(observability),
      clock_(clock),
      image_(config.block_count) {}

ciobase::ByteSpan HostBlockDevice::RawBlock(uint64_t lba) const {
  static const ciobase::Buffer kEmpty;
  if (lba >= image_.size()) {
    return kEmpty;
  }
  return image_[lba];
}

void HostBlockDevice::Poll() {
  for (;;) {
    uint64_t produced = region_->HostReadLe64(layout_.SubmitProduced());
    if (submit_consumed_ >= produced) {
      break;
    }
    uint64_t slot = layout_.SubmitSlot(submit_consumed_);
    uint8_t header[32];
    region_->HostRead(slot, header);
    uint32_t op = ciobase::LoadLe32(header);
    uint32_t len = std::min<uint32_t>(ciobase::LoadLe32(header + 4),
                                      config_.block_size);
    uint64_t lba = ciobase::LoadLe64(header + 8);
    ++submit_consumed_;
    region_->HostWriteLe64(layout_.SubmitConsumed(), submit_consumed_);
    ++stats_.ops;

    if (observability_ != nullptr) {
      // The storage access pattern the host inevitably observes [3].
      observability_->Record(ciohost::ObsCategory::kCallArgs, lba,
                             "block lba");
      observability_->Record(ciohost::ObsCategory::kMessageBoundary, len,
                             "block len");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "block op");
    }

    uint32_t status = 0;
    ciobase::Buffer payload;
    if (lba >= image_.size() && op != static_cast<uint32_t>(BlockOp::kFlush)) {
      ++stats_.bad_lba;
      status = 1;
    } else if (op == static_cast<uint32_t>(BlockOp::kWrite)) {
      ciobase::Buffer data(len);
      region_->HostRead(slot + 32, data);
      image_[lba] = std::move(data);
    } else if (op == static_cast<uint32_t>(BlockOp::kRead)) {
      payload = image_[lba];
      if (adversary_ != nullptr) {
        // Corrupt the stored bytes (not the zero padding appended below).
        adversary_->MaybeCorruptPayload(payload);
      }
      payload.resize(config_.block_size, 0);
    } else if (op == static_cast<uint32_t>(BlockOp::kFlush)) {
      // Nothing to do for an in-memory image.
    } else {
      status = 1;  // unknown op
    }

    uint64_t complete_slot = layout_.CompleteSlot(complete_produced_);
    uint8_t complete_header[32] = {0};
    uint32_t reported_len = static_cast<uint32_t>(payload.size());
    if (adversary_ != nullptr) {
      reported_len =
          adversary_->MutateUsedLen(reported_len, config_.block_size);
    }
    ciobase::StoreLe32(complete_header, status);
    ciobase::StoreLe32(complete_header + 4, reported_len);
    region_->HostWrite(complete_slot, complete_header);
    if (!payload.empty()) {
      region_->HostWrite(complete_slot + 32, payload);
    }
    ++complete_produced_;
    uint64_t published = complete_produced_;
    if (adversary_ != nullptr) {
      published = adversary_->MutatePublishedCounter(published);
    }
    region_->HostWriteLe64(layout_.CompleteProduced(), published);
  }
}

}  // namespace cioblock
