#include "src/blockio/block_ring.h"

#include <cassert>

#include "src/base/bits.h"
#include "src/base/coverage.h"

namespace cioblock {

// Submit slot header: [op u32][len u32][lba u64][pad 16] then payload.
// Complete slot header: [status u32][len u32][pad 24] then payload.

bool BlockRingConfig::Valid() const {
  return ciobase::IsPowerOfTwo(block_size) && ciobase::IsPowerOfTwo(ring_slots) &&
         block_count > 0;
}

uint64_t BlockRingConfig::RegionSize() const {
  return BlockLayout(*this).total;
}

BlockLayout::BlockLayout(const BlockRingConfig& config)
    : slots(config.ring_slots), slot_size(config.SlotSize()) {
  submit_ring = 256;
  complete_ring = submit_ring + slots * slot_size;
  total = complete_ring + slots * slot_size;
}

uint64_t BlockLayout::SubmitSlot(uint64_t index) const {
  return submit_ring + ciobase::MaskIndex(index, slots) * slot_size;
}

uint64_t BlockLayout::CompleteSlot(uint64_t index) const {
  return complete_ring + ciobase::MaskIndex(index, slots) * slot_size;
}

// --- RingBlockClient -------------------------------------------------------------

RingBlockClient::RingBlockClient(ciotee::SharedRegion* region,
                                 BlockRingConfig config,
                                 HostBlockDevice* device,
                                 ciobase::CostModel* costs,
                                 ciobase::RecoveryConfig recovery)
    : region_(region),
      config_(config),
      layout_(config),
      device_(device),
      costs_(costs),
      recovery_(recovery),
      watchdog_(recovery) {
  assert(config.Valid());
  assert(region->size() >= layout_.total);
  assert(recovery.Valid());
  last_boot_ = region_->GuestReadLe64(layout_.BootCount());
}

ciobase::Status RingBlockClient::Submit(BlockOp op, uint64_t lba,
                                        ciobase::ByteSpan data) {
  if (lba >= config_.block_count) {
    return ciobase::OutOfRange("lba beyond device");
  }
  if (data.size() > config_.block_size) {
    return ciobase::InvalidArgument("payload exceeds block size");
  }
  uint64_t consumed = region_->GuestReadLe64(layout_.SubmitConsumed());
  if (submit_produced_ - std::min(consumed, submit_produced_) >=
      layout_.slots) {
    return ciobase::ResourceExhausted("submit ring full");
  }
  uint64_t slot = layout_.SubmitSlot(submit_produced_);
  uint8_t header[32] = {0};
  ciobase::StoreLe32(header, static_cast<uint32_t>(op));
  ciobase::StoreLe32(header + 4, static_cast<uint32_t>(data.size()));
  ciobase::StoreLe64(header + 8, lba);
  region_->GuestWrite(slot, header);
  if (!data.empty()) {
    costs_->ChargeCopy(data.size());
    region_->GuestWrite(slot + 32, data);
  }
  ++submit_produced_;
  region_->GuestWriteLe64(layout_.SubmitProduced(), submit_produced_);
  return ciobase::OkStatus();
}

void RingBlockClient::ResetRing() {
  ++stats_.ring_resets;
  ++epoch_;
  submit_produced_ = 0;
  complete_consumed_ = 0;
  region_->GuestWriteLe64(layout_.SubmitProduced(), 0);
  region_->GuestWriteLe64(layout_.CompleteConsumed(), 0);
  region_->GuestWriteLe64(layout_.GuestEpoch(), epoch_);
  // Kick so an honest (or restarted) host can adopt the new epoch now.
  device_->Kick();
  // A changed boot count means the host restarted: its write-back cache is
  // gone, so everything the layers above believe about unflushed state is
  // stale. Latch needs-remount; the store resolves it via Reattach().
  uint64_t boot = region_->GuestReadLe64(layout_.BootCount());
  if (boot != last_boot_) {
    if (last_boot_ != 0) {
      needs_remount_ = true;
      ++stats_.host_restarts;
      CIO_COV("block.boot_count_changed", ciobase::StatusCode::kLinkReset);
    }
    last_boot_ = boot;
  }
}

void RingBlockClient::Reattach() {
  needs_remount_ = false;
  ResetRing();
}

ciobase::Result<ciobase::Buffer> RingBlockClient::Reap(uint32_t expected_len) {
  // Strict FIFO: kick the host device until our completion index appears.
  uint64_t spins = 0;
  for (;;) {
    costs_->ChargeRingPoll();
    device_->Kick();
    // Completions are only meaningful when the host runs our epoch: right
    // after a ring reset the shared counters still hold pre-reset values,
    // and consuming one of those would acknowledge an op the device never
    // executed under the new epoch.
    bool attached = region_->GuestReadLe64(layout_.HostEpoch()) == epoch_;
    uint64_t produced = region_->GuestReadLe64(layout_.CompleteProduced());
    uint64_t pending = produced - complete_consumed_;
    bool coherent = pending <= layout_.slots;
    if (attached && coherent && pending > 0) {
      uint64_t slot = layout_.CompleteSlot(complete_consumed_);
      // Single fetch of the whole completion slot.
      ciobase::Buffer raw(32 + expected_len);
      costs_->ChargeCopy(raw.size());
      region_->GuestRead(slot, raw);
      ++complete_consumed_;
      region_->GuestWriteLe64(layout_.CompleteConsumed(), complete_consumed_);
      watchdog_.NoteProgress(costs_->clock()->now_ns());
      watchdog_.Disarm();

      uint32_t status = ciobase::LoadLe32(raw.data());
      uint32_t len = ciobase::LoadLe32(raw.data() + 4);
      if (len > expected_len) {
        ++stats_.clamped_completions;
        CIO_COV("block.reap.len_clamped", ciobase::StatusCode::kOutOfRange);
        len = expected_len;
      }
      if (status != 0) {
        ++stats_.failed_completions;
        CIO_COV("block.reap.device_failure",
                ciobase::StatusCode::kHostViolation);
        return ciobase::HostViolation("device reported failure");
      }
      CIO_COV("block.reap.completion", ciobase::StatusCode::kOk);
      return ciobase::Buffer(raw.begin() + 32, raw.begin() + 32 + len);
    }
    if (!coherent) {
      ++stats_.incoherent_counters;
      CIO_COV("block.reap.incoherent_counter",
              ciobase::StatusCode::kHostViolation);
    }
    if (!recovery_.enabled) {
      if (++spins >= 1024) {
        return ciobase::Unavailable("completion never arrived");
      }
      continue;
    }
    uint64_t now = costs_->clock()->now_ns();
    watchdog_.Arm(now);
    if (watchdog_.Expired(now)) {
      ++stats_.watchdog_fires;
      if (watchdog_.Exhausted()) {
        CIO_COV("block.watchdog", ciobase::StatusCode::kTimedOut);
        return ciobase::TimedOut("block device dead: reset budget spent");
      }
      CIO_COV("block.watchdog", ciobase::StatusCode::kLinkReset);
      ResetRing();
      watchdog_.NoteReset(costs_->clock()->now_ns());
      return ciobase::LinkReset("block ring reset");
    }
    costs_->clock()->Advance(kPollIntervalNs);
  }
}

ciobase::Result<ciobase::Buffer> RingBlockClient::Execute(
    BlockOp op, uint64_t lba, ciobase::ByteSpan data, uint32_t expected_len) {
  if (needs_remount_) {
    return ciobase::LinkReset("host restarted; remount required");
  }
  for (;;) {
    CIO_RETURN_IF_ERROR(Submit(op, lba, data));
    auto done = Reap(expected_len);
    if (done.ok() ||
        done.status().code() != ciobase::StatusCode::kLinkReset) {
      return done;
    }
    if (needs_remount_) {
      return ciobase::LinkReset("host restarted; remount required");
    }
    // Transient reset within the same host boot: the submission is gone
    // with the old ring; resubmit under the new epoch. Termination is
    // guaranteed by the watchdog's reset budget (kTimedOut above).
  }
}

ciobase::Status RingBlockClient::WriteBlock(uint64_t lba,
                                            ciobase::ByteSpan data) {
  ++stats_.writes;
  return Execute(BlockOp::kWrite, lba, data, 0).status();
}

ciobase::Result<ciobase::Buffer> RingBlockClient::ReadBlock(uint64_t lba) {
  ++stats_.reads;
  return Execute(BlockOp::kRead, lba, {}, config_.block_size);
}

ciobase::Status RingBlockClient::Flush() {
  return Execute(BlockOp::kFlush, 0, {}, 0).status();
}

// --- HostBlockDevice ---------------------------------------------------------------

HostBlockDevice::HostBlockDevice(ciotee::SharedRegion* region,
                                 BlockRingConfig config,
                                 ciohost::Adversary* adversary,
                                 ciohost::ObservabilityLog* observability,
                                 ciobase::SimClock* clock)
    : region_(region),
      config_(config),
      layout_(config),
      adversary_(adversary),
      observability_(observability),
      clock_(clock),
      image_(config.block_count) {
  region_->HostWriteLe64(layout_.BootCount(), boot_count_);
}

bool HostBlockDevice::Faulted(ciohost::FaultStrategy strategy) const {
  return adversary_ != nullptr &&
         adversary_->FaultActive(strategy, clock_->now_ns());
}

ciobase::ByteSpan HostBlockDevice::RawBlock(uint64_t lba) const {
  static const ciobase::Buffer kEmpty;
  if (lba >= image_.size()) {
    return kEmpty;
  }
  auto it = cache_.find(lba);
  if (it != cache_.end()) {
    return it->second;
  }
  return image_[lba];
}

ciobase::ByteSpan HostBlockDevice::RawDurableBlock(uint64_t lba) const {
  static const ciobase::Buffer kEmpty;
  if (lba >= image_.size()) {
    return kEmpty;
  }
  return image_[lba];
}

void HostBlockDevice::FlushCache() {
  for (auto& [lba, data] : cache_) {
    image_[lba] = std::move(data);
  }
  cache_.clear();
}

void HostBlockDevice::SimulateCrash() {
  ++stats_.crashes;
  // Unflushed writes die with the host process.
  cache_.clear();
  ++boot_count_;
  writes_since_crash_ = 0;
  submit_consumed_ = 0;
  complete_produced_ = 0;
  // The restarted host remaps the shared region and waits for a fresh
  // attach: only a *new* guest epoch (a ring reset issued after the crash)
  // brings the device back to life.
  epoch_ = region_->HostReadLe64(layout_.GuestEpoch());
  awaiting_reattach_ = true;
}

void HostBlockDevice::SnapshotImage() { snapshot_ = image_; }

void HostBlockDevice::RestoreSnapshot() {
  image_ = snapshot_;
  cache_.clear();
}

bool HostBlockDevice::CorruptRawByte(uint64_t lba, size_t offset,
                                     uint8_t xor_mask) {
  if (lba >= image_.size()) {
    return false;
  }
  auto it = cache_.find(lba);
  ciobase::Buffer& block = it != cache_.end() ? it->second : image_[lba];
  if (offset >= block.size()) {
    return false;
  }
  block[offset] ^= xor_mask;
  return true;
}

bool HostBlockDevice::TruncateRawBlock(uint64_t lba, size_t new_size) {
  if (lba >= image_.size()) {
    return false;
  }
  auto it = cache_.find(lba);
  ciobase::Buffer& block = it != cache_.end() ? it->second : image_[lba];
  if (new_size >= block.size()) {
    return false;
  }
  block.resize(new_size);
  return true;
}

void HostBlockDevice::AdoptGuestEpoch() {
  uint64_t guest_epoch = region_->HostReadLe64(layout_.GuestEpoch());
  if (guest_epoch == epoch_) {
    return;
  }
  epoch_ = guest_epoch;
  submit_consumed_ = 0;
  complete_produced_ = 0;
  region_->HostWriteLe64(layout_.SubmitConsumed(), 0);
  region_->HostWriteLe64(layout_.CompleteProduced(), 0);
  region_->HostWriteLe64(layout_.HostEpoch(), epoch_);
  region_->HostWriteLe64(layout_.BootCount(), boot_count_);
  awaiting_reattach_ = false;
  ++stats_.epoch_adoptions;
}

void HostBlockDevice::Kick() {
  if (Faulted(ciohost::FaultStrategy::kSwallowDoorbell) ||
      Faulted(ciohost::FaultStrategy::kLinkKill)) {
    ++stats_.kicks_swallowed;
    return;
  }
  Poll();
}

void HostBlockDevice::Poll() {
  AdoptGuestEpoch();
  if (awaiting_reattach_) {
    return;  // crashed host: nothing happens until the guest reattaches
  }
  if (Faulted(ciohost::FaultStrategy::kStallCounters) ||
      Faulted(ciohost::FaultStrategy::kLinkKill)) {
    return;
  }
  // Per-poll budget: SubmitProduced is guest-written shared memory; a fuzzed
  // value must not spin the device model unboundedly in one poll. An honest
  // guest never has more than one ring of submissions outstanding.
  for (uint64_t budget = 0; budget < layout_.slots; ++budget) {
    uint64_t produced = region_->HostReadLe64(layout_.SubmitProduced());
    if (submit_consumed_ >= produced) {
      break;
    }
    uint64_t slot = layout_.SubmitSlot(submit_consumed_);
    uint8_t header[32];
    region_->HostRead(slot, header);
    // Validate the opcode once, on fetch; unknown ops complete with a
    // status error instead of being silently ignored.
    uint32_t op = ciobase::LoadLe32(header);
    bool known_op = op == static_cast<uint32_t>(BlockOp::kRead) ||
                    op == static_cast<uint32_t>(BlockOp::kWrite) ||
                    op == static_cast<uint32_t>(BlockOp::kFlush);
    uint32_t len = std::min<uint32_t>(ciobase::LoadLe32(header + 4),
                                      config_.block_size);
    uint64_t lba = ciobase::LoadLe64(header + 8);
    ++submit_consumed_;
    region_->HostWriteLe64(layout_.SubmitConsumed(), submit_consumed_);
    ++stats_.ops;

    if (observability_ != nullptr) {
      // The storage access pattern the host inevitably observes [3].
      observability_->Record(ciohost::ObsCategory::kCallArgs, lba,
                             "block lba");
      observability_->Record(ciohost::ObsCategory::kMessageBoundary, len,
                             "block len");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "block op");
    }

    uint32_t status = 0;
    ciobase::Buffer payload;
    if (!known_op) {
      ++stats_.bad_op;
      status = 1;
    } else if (lba >= image_.size() &&
               op != static_cast<uint32_t>(BlockOp::kFlush)) {
      ++stats_.bad_lba;
      status = 1;
    } else if (op == static_cast<uint32_t>(BlockOp::kWrite)) {
      ciobase::Buffer data(len);
      region_->HostRead(slot + 32, data);
      if (Faulted(ciohost::FaultStrategy::kTornWrite) && len > 1) {
        // Only the first half of the sector reaches the medium; the tail
        // keeps whatever was there before (zero for never-written blocks).
        ++stats_.torn_writes;
        ciobase::ByteSpan prev = RawBlock(lba);
        for (size_t i = len / 2; i < data.size(); ++i) {
          data[i] = i < prev.size() ? prev[i] : 0;
        }
      }
      cache_[lba] = std::move(data);
      ++stats_.cached_writes;
      if (crash_after_writes_ > 0 &&
          ++writes_since_crash_ >= crash_after_writes_) {
        // Deterministic crash point: the host dies before completing this
        // write (it is cached, not durable, and the completion never lands).
        SimulateCrash();
        return;
      }
    } else if (op == static_cast<uint32_t>(BlockOp::kRead)) {
      ciobase::ByteSpan current = RawBlock(lba);
      payload.assign(current.begin(), current.end());
      if (Faulted(ciohost::FaultStrategy::kBitRot) && !payload.empty()) {
        // The returned copy rots; the medium itself is intact, so the
        // guest can get a clean read once the window closes.
        payload[stats_.bit_rot_reads % payload.size()] ^= 0x04;
        ++stats_.bit_rot_reads;
      }
      if (adversary_ != nullptr) {
        // Corrupt the stored bytes (not the zero padding appended below).
        adversary_->MaybeCorruptPayload(payload);
      }
      payload.resize(config_.block_size, 0);
    } else if (op == static_cast<uint32_t>(BlockOp::kFlush)) {
      FlushCache();
      ++stats_.flushes;
    }

    if (Faulted(ciohost::FaultStrategy::kDropCompletions)) {
      ++stats_.completions_dropped;
      continue;  // the op executed, but the guest never hears about it
    }

    uint64_t complete_slot = layout_.CompleteSlot(complete_produced_);
    uint8_t complete_header[32] = {0};
    uint32_t reported_len = static_cast<uint32_t>(payload.size());
    if (adversary_ != nullptr) {
      reported_len =
          adversary_->MutateUsedLen(reported_len, config_.block_size);
    }
    ciobase::StoreLe32(complete_header, status);
    ciobase::StoreLe32(complete_header + 4, reported_len);
    region_->HostWrite(complete_slot, complete_header);
    if (!payload.empty()) {
      region_->HostWrite(complete_slot + 32, payload);
    }
    ++complete_produced_;
    uint64_t published = complete_produced_;
    if (Faulted(ciohost::FaultStrategy::kGarbageCounters)) {
      published = ~0ULL - 7;
    } else if (adversary_ != nullptr) {
      published = adversary_->MutatePublishedCounter(published);
    }
    region_->HostWriteLe64(layout_.CompleteProduced(), published);
  }
}

}  // namespace cioblock
