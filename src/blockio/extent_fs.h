// ExtentFs: a small extent-based filesystem over a BlockClient.
//
// This is the high-level half of the §3.3 storage story: it plays the role
// of the filesystem that would live in the storage compartment, exposing
// file operations at the upper boundary while the block ring below is the
// hardened low-level boundary. Deliberately simple but complete: a flat
// namespace, an inode table with up to four extents per file, a block
// allocation bitmap, and create/write/read/delete/list operations.
//
// On-disk layout (logical blocks of the underlying client):
//   block 0                  superblock
//   blocks 1..inode_blocks   inode table (fixed-size inode records)
//   the rest                 data blocks
//
// Write semantics are whole-file (write replaces content), which matches
// the Put/Get object-store surface the examples build on.

#ifndef SRC_BLOCKIO_EXTENT_FS_H_
#define SRC_BLOCKIO_EXTENT_FS_H_

#include <string>
#include <vector>

#include "src/blockio/block_ring.h"

namespace cioblock {

class ExtentFs {
 public:
  static constexpr uint32_t kMagic = 0xC10F5AFE;
  static constexpr size_t kMaxName = 31;
  static constexpr int kMaxExtents = 4;

  explicit ExtentFs(BlockClient* client) : client_(client) {}

  // Initializes an empty filesystem (destroys existing content).
  ciobase::Status Format(uint32_t inode_count = 64);
  // Loads superblock and inode table; validates the magic.
  ciobase::Status Mount();

  ciobase::Status WriteFile(std::string_view name, ciobase::ByteSpan data);
  ciobase::Result<ciobase::Buffer> ReadFile(std::string_view name);
  ciobase::Status DeleteFile(std::string_view name);
  std::vector<std::string> ListFiles() const;
  ciobase::Result<size_t> FileSize(std::string_view name) const;

  size_t FreeBlocks() const;
  bool mounted() const { return mounted_; }

 private:
  struct Extent {
    uint32_t start = 0;
    uint32_t count = 0;
  };
  struct Inode {
    bool used = false;
    uint64_t size = 0;
    std::string name;
    Extent extents[kMaxExtents];
  };

  static constexpr size_t kInodeRecordSize = 80;

  uint32_t DataStart() const { return 1 + inode_blocks_; }
  int FindInode(std::string_view name) const;
  int FindFreeInode() const;
  ciobase::Status FlushInode(int index);
  ciobase::Status ReadInodeTable();
  // Allocates `blocks` data blocks into at most kMaxExtents extents.
  ciobase::Result<std::vector<Extent>> AllocateExtents(size_t blocks);
  void ReleaseExtents(const Inode& inode);
  size_t InodesPerBlock() const {
    return client_->block_size() / kInodeRecordSize;
  }

  BlockClient* client_;
  bool mounted_ = false;
  uint32_t inode_count_ = 0;
  uint32_t inode_blocks_ = 0;
  std::vector<Inode> inodes_;
  std::vector<bool> block_used_;  // data-block allocation bitmap
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_EXTENT_FS_H_
