// ExtentFs: a small crash-consistent extent filesystem over a BlockClient.
//
// This is the high-level half of the §3.3 storage story: it plays the role
// of the filesystem that would live in the storage compartment, exposing
// file operations at the upper boundary while the block ring below is the
// hardened low-level boundary. Deliberately simple but complete: a flat
// namespace, an inode table with up to four extents per file, a block
// allocation bitmap, and create/write/read/delete/list operations.
//
// On-disk layout (logical blocks of the underlying client):
//   block 0                      superblock (checksummed)
//   blocks 1..kJournalBlocks     write-ahead journal ring (one record/slot)
//   next inode_blocks blocks     inode table (trailing checksum per block)
//   the rest                     data blocks
//
// Crash consistency: WriteFile/DeleteFile are atomic against host crashes.
// The sequence is (1) write the new data extents, (2) append a checksummed,
// sequence-stamped journal record carrying the new inode, (3) flush — the
// commit point: once the flush is acknowledged the update is durable —
// then (4) rewrite the inode-table block in place. A crash before (3)
// leaves the old version; a crash after (3) is repaired by Mount(), which
// replays surviving journal records in sequence order over the inode
// table (idempotently: records are whole-inode images, and a slot is only
// ever overwritten by a record kJournalBlocks sequence numbers later, so
// the journal can never hold an older image of an inode while missing a
// newer one). ScanAndRepair() is the fsck path: it additionally drops
// corrupt inode-table blocks and inodes with out-of-range or overlapping
// extents instead of refusing to mount.
//
// Write semantics are whole-file (write replaces content), which matches
// the Put/Get object-store surface the examples build on.

#ifndef SRC_BLOCKIO_EXTENT_FS_H_
#define SRC_BLOCKIO_EXTENT_FS_H_

#include <string>
#include <vector>

#include "src/blockio/block_ring.h"

namespace cioblock {

class ExtentFs {
 public:
  static constexpr uint32_t kMagic = 0xC10F5AFE;
  static constexpr uint32_t kVersion = 2;
  static constexpr size_t kMaxName = 31;
  static constexpr int kMaxExtents = 4;
  static constexpr uint32_t kJournalBlocks = 8;

  explicit ExtentFs(BlockClient* client) : client_(client) {}

  // Initializes an empty filesystem (destroys existing content) and
  // flushes, so a freshly formatted image survives an immediate crash.
  ciobase::Status Format(uint32_t inode_count = 64);
  // Loads the superblock and inode table, replays the journal, and
  // validates extents. Fails (without crashing) on inconsistent images:
  // kFailedPrecondition for "not a filesystem", kTampered for corruption.
  ciobase::Status Mount();

  // fsck: like Mount, but salvages what it can — corrupt inode-table
  // blocks and inodes with invalid extents are dropped (and rewritten
  // clean) rather than failing the mount. The superblock must still be
  // intact; there is no geometry to repair from if it is not.
  struct RepairReport {
    uint32_t dropped_inode_blocks = 0;
    uint32_t dropped_inodes = 0;
    uint32_t invalid_journal_slots = 0;
    uint32_t journal_replays = 0;
    bool repaired() const {
      return dropped_inode_blocks != 0 || dropped_inodes != 0 ||
             journal_replays != 0;
    }
  };
  ciobase::Result<RepairReport> ScanAndRepair();

  ciobase::Status WriteFile(std::string_view name, ciobase::ByteSpan data);
  ciobase::Result<ciobase::Buffer> ReadFile(std::string_view name);
  ciobase::Status DeleteFile(std::string_view name);
  std::vector<std::string> ListFiles() const;
  ciobase::Result<size_t> FileSize(std::string_view name) const;
  // Durability barrier for everything written so far.
  ciobase::Status Flush();

  size_t FreeBlocks() const;
  bool mounted() const { return mounted_; }

  struct Stats {
    uint64_t mounts = 0;
    uint64_t journal_replays = 0;
    uint64_t invalid_journal_slots = 0;
    uint64_t journal_appends = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Extent {
    uint32_t start = 0;
    uint32_t count = 0;
  };
  struct Inode {
    bool used = false;
    uint64_t size = 0;
    std::string name;
    Extent extents[kMaxExtents];
  };

  static constexpr size_t kInodeRecordSize = 80;
  static constexpr size_t kSuperblockSize = 32;
  // Journal record: [magic u32][op u32][seq u64][inode u32][rsvd u32]
  //                 [inode record 80][checksum u64].
  static constexpr size_t kJournalRecordSize = 112;
  static constexpr uint32_t kJournalMagic = 0x4A524E31;  // "JRN1"
  static constexpr uint32_t kJournalOpSet = 1;
  static constexpr uint32_t kJournalOpClear = 2;

  uint32_t InodeTableStart() const { return 1 + kJournalBlocks; }
  uint32_t DataStart() const { return InodeTableStart() + inode_blocks_; }
  int FindInode(std::string_view name) const;
  int FindFreeInode() const;
  static void SerializeInode(const Inode& inode, uint8_t* out);
  static Inode ParseInode(const uint8_t* p);
  ciobase::Status CheckGeometry() const;
  ciobase::Status WriteSuperblock();
  ciobase::Status LoadSuperblock();
  // Serializes the whole table block containing `index` from memory
  // (checksummed); no read-modify-write, so it also repairs corrupt blocks.
  ciobase::Status WriteInodeTableBlock(uint32_t table_block);
  ciobase::Status FlushInode(int index);
  // repair == nullptr: strict (corruption fails the mount).
  ciobase::Status ReadInodeTable(RepairReport* repair);
  // The journal is always read leniently: torn records are legitimate
  // crash debris, never a reason to refuse the mount.
  ciobase::Status ReplayJournal(RepairReport* repair, uint32_t* replayed);
  ciobase::Status ValidateInodesAndRebuildBitmap(RepairReport* repair);
  ciobase::Status AppendJournal(uint32_t op, uint32_t index,
                                const Inode& record);
  // Allocates `blocks` data blocks into at most kMaxExtents extents.
  ciobase::Result<std::vector<Extent>> AllocateExtents(size_t blocks);
  void ReleaseExtents(const Inode& inode);
  size_t InodesPerBlock() const {
    return (client_->block_size() - 8) / kInodeRecordSize;
  }

  BlockClient* client_;
  bool mounted_ = false;
  uint32_t inode_count_ = 0;
  uint32_t inode_blocks_ = 0;
  uint64_t journal_seq_ = 0;
  std::vector<Inode> inodes_;
  std::vector<bool> block_used_;  // data-block allocation bitmap
  Stats stats_;
};

}  // namespace cioblock

#endif  // SRC_BLOCKIO_EXTENT_FS_H_
