#include "src/blockio/extent_fs.h"

#include <cstring>

namespace cioblock {

// Inode record (80 bytes):
//   [used u8][name 31 bytes zero-padded][size u64]
//   [extents: 4 x {start u32, count u32}]  (= 32 bytes)
//   [reserved to 80]

ciobase::Status ExtentFs::Format(uint32_t inode_count) {
  inode_count_ = inode_count;
  inode_blocks_ = static_cast<uint32_t>(
      (inode_count + InodesPerBlock() - 1) / InodesPerBlock());
  if (DataStart() + 8 > client_->block_count()) {
    return ciobase::InvalidArgument("device too small");
  }
  // Superblock.
  ciobase::Buffer super(16);
  ciobase::StoreLe32(super.data(), kMagic);
  ciobase::StoreLe32(super.data() + 4, inode_count_);
  ciobase::StoreLe32(super.data() + 8, inode_blocks_);
  CIO_RETURN_IF_ERROR(client_->WriteBlock(0, super));
  // Empty inode table.
  ciobase::Buffer zero_block(client_->block_size(), 0);
  for (uint32_t b = 0; b < inode_blocks_; ++b) {
    CIO_RETURN_IF_ERROR(client_->WriteBlock(1 + b, zero_block));
  }
  inodes_.assign(inode_count_, Inode{});
  block_used_.assign(client_->block_count() - DataStart(), false);
  mounted_ = true;
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::Mount() {
  auto super = client_->ReadBlock(0);
  if (!super.ok()) {
    return super.status();
  }
  if (super->size() < 16 || ciobase::LoadLe32(super->data()) != kMagic) {
    return ciobase::FailedPrecondition("no filesystem (bad magic)");
  }
  inode_count_ = ciobase::LoadLe32(super->data() + 4);
  inode_blocks_ = ciobase::LoadLe32(super->data() + 8);
  if (inode_count_ == 0 || inode_count_ > 4096 ||
      inode_blocks_ != (inode_count_ + InodesPerBlock() - 1) /
                           InodesPerBlock()) {
    return ciobase::Tampered("superblock geometry inconsistent");
  }
  CIO_RETURN_IF_ERROR(ReadInodeTable());
  // Rebuild the allocation bitmap from the inodes.
  block_used_.assign(client_->block_count() - DataStart(), false);
  for (const Inode& inode : inodes_) {
    if (!inode.used) {
      continue;
    }
    for (const Extent& extent : inode.extents) {
      for (uint32_t i = 0; i < extent.count; ++i) {
        uint64_t block = extent.start + i;
        if (block < DataStart() ||
            block - DataStart() >= block_used_.size()) {
          return ciobase::Tampered("inode extent outside data area");
        }
        block_used_[block - DataStart()] = true;
      }
    }
  }
  mounted_ = true;
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::ReadInodeTable() {
  inodes_.assign(inode_count_, Inode{});
  for (uint32_t b = 0; b < inode_blocks_; ++b) {
    auto block = client_->ReadBlock(1 + b);
    if (!block.ok()) {
      return block.status();
    }
    if (block->empty()) {
      continue;  // never-written table block: all free
    }
    size_t per_block = InodesPerBlock();
    for (size_t i = 0; i < per_block; ++i) {
      size_t index = b * per_block + i;
      if (index >= inode_count_) {
        break;
      }
      size_t offset = i * kInodeRecordSize;
      if (offset + kInodeRecordSize > block->size()) {
        break;
      }
      const uint8_t* p = block->data() + offset;
      Inode& inode = inodes_[index];
      inode.used = p[0] != 0;
      if (!inode.used) {
        continue;
      }
      size_t name_len = 0;
      while (name_len < kMaxName && p[1 + name_len] != 0) {
        ++name_len;
      }
      inode.name.assign(reinterpret_cast<const char*>(p + 1), name_len);
      inode.size = ciobase::LoadLe64(p + 32);
      for (int e = 0; e < kMaxExtents; ++e) {
        inode.extents[e].start = ciobase::LoadLe32(p + 40 + e * 8);
        inode.extents[e].count = ciobase::LoadLe32(p + 44 + e * 8);
      }
    }
  }
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::FlushInode(int index) {
  size_t per_block = InodesPerBlock();
  uint32_t block_index = 1 + static_cast<uint32_t>(index / per_block);
  auto block = client_->ReadBlock(block_index);
  if (!block.ok()) {
    return block.status();
  }
  ciobase::Buffer data = std::move(*block);
  data.resize(client_->block_size(), 0);
  size_t offset = (index % per_block) * kInodeRecordSize;
  uint8_t* p = data.data() + offset;
  std::memset(p, 0, kInodeRecordSize);
  const Inode& inode = inodes_[index];
  p[0] = inode.used ? 1 : 0;
  std::memcpy(p + 1, inode.name.data(),
              std::min(inode.name.size(), kMaxName));
  ciobase::StoreLe64(p + 32, inode.size);
  for (int e = 0; e < kMaxExtents; ++e) {
    ciobase::StoreLe32(p + 40 + e * 8, inode.extents[e].start);
    ciobase::StoreLe32(p + 44 + e * 8, inode.extents[e].count);
  }
  return client_->WriteBlock(block_index, data);
}

int ExtentFs::FindInode(std::string_view name) const {
  for (size_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_[i].used && inodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ExtentFs::FindFreeInode() const {
  for (size_t i = 0; i < inodes_.size(); ++i) {
    if (!inodes_[i].used) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t ExtentFs::FreeBlocks() const {
  size_t free_count = 0;
  for (bool used : block_used_) {
    if (!used) {
      ++free_count;
    }
  }
  return free_count;
}

ciobase::Result<std::vector<ExtentFs::Extent>> ExtentFs::AllocateExtents(
    size_t blocks) {
  std::vector<Extent> extents;
  size_t remaining = blocks;
  size_t i = 0;
  while (remaining > 0 && i < block_used_.size()) {
    if (block_used_[i]) {
      ++i;
      continue;
    }
    // Grow a run from i.
    size_t run = 0;
    while (i + run < block_used_.size() && !block_used_[i + run] &&
           run < remaining) {
      ++run;
    }
    if (extents.size() == kMaxExtents) {
      return ciobase::ResourceExhausted("file too fragmented");
    }
    extents.push_back(Extent{static_cast<uint32_t>(DataStart() + i),
                             static_cast<uint32_t>(run)});
    for (size_t j = 0; j < run; ++j) {
      block_used_[i + j] = true;
    }
    remaining -= run;
    i += run;
  }
  if (remaining > 0) {
    // Roll back.
    for (const Extent& extent : extents) {
      for (uint32_t j = 0; j < extent.count; ++j) {
        block_used_[extent.start - DataStart() + j] = false;
      }
    }
    return ciobase::ResourceExhausted("out of space");
  }
  return extents;
}

void ExtentFs::ReleaseExtents(const Inode& inode) {
  for (const Extent& extent : inode.extents) {
    for (uint32_t j = 0; j < extent.count; ++j) {
      uint64_t block = extent.start + j;
      if (block >= DataStart() &&
          block - DataStart() < block_used_.size()) {
        block_used_[block - DataStart()] = false;
      }
    }
  }
}

ciobase::Status ExtentFs::WriteFile(std::string_view name,
                                    ciobase::ByteSpan data) {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  if (name.empty() || name.size() > kMaxName) {
    return ciobase::InvalidArgument("bad file name");
  }
  int index = FindInode(name);
  bool existed = index >= 0;
  if (!existed) {
    index = FindFreeInode();
    if (index < 0) {
      return ciobase::ResourceExhausted("out of inodes");
    }
  }
  Inode old = inodes_[index];
  size_t block_size = client_->block_size();
  size_t blocks = (data.size() + block_size - 1) / block_size;

  // Free old extents first so rewrites can reuse their own space.
  if (existed) {
    ReleaseExtents(old);
  }
  auto extents = AllocateExtents(blocks);
  if (!extents.ok()) {
    if (existed) {
      // Restore the old allocation; content unchanged.
      for (const Extent& extent : old.extents) {
        for (uint32_t j = 0; j < extent.count; ++j) {
          block_used_[extent.start - DataStart() + j] = true;
        }
      }
    }
    return extents.status();
  }

  Inode& inode = inodes_[index];
  inode.used = true;
  inode.name = std::string(name);
  inode.size = data.size();
  for (int e = 0; e < kMaxExtents; ++e) {
    inode.extents[e] = e < static_cast<int>(extents->size())
                           ? (*extents)[e]
                           : Extent{};
  }

  // Data blocks.
  size_t written = 0;
  for (const Extent& extent : *extents) {
    for (uint32_t j = 0; j < extent.count; ++j) {
      size_t n = std::min(block_size, data.size() - written);
      CIO_RETURN_IF_ERROR(client_->WriteBlock(
          extent.start + j, data.subspan(written, n)));
      written += n;
    }
  }
  return FlushInode(index);
}

ciobase::Result<ciobase::Buffer> ExtentFs::ReadFile(std::string_view name) {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  int index = FindInode(name);
  if (index < 0) {
    return ciobase::NotFound("no such file");
  }
  const Inode& inode = inodes_[index];
  ciobase::Buffer out;
  out.reserve(inode.size);
  for (const Extent& extent : inode.extents) {
    for (uint32_t j = 0; j < extent.count && out.size() < inode.size; ++j) {
      auto block = client_->ReadBlock(extent.start + j);
      if (!block.ok()) {
        return block.status();
      }
      size_t take = std::min<size_t>(client_->block_size(),
                                     inode.size - out.size());
      block->resize(std::max(block->size(), take), 0);
      out.insert(out.end(), block->begin(),
                 block->begin() + static_cast<long>(take));
    }
  }
  if (out.size() != inode.size) {
    return ciobase::Tampered("file shorter than inode size");
  }
  return out;
}

ciobase::Status ExtentFs::DeleteFile(std::string_view name) {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  int index = FindInode(name);
  if (index < 0) {
    return ciobase::NotFound("no such file");
  }
  ReleaseExtents(inodes_[index]);
  inodes_[index] = Inode{};
  return FlushInode(index);
}

std::vector<std::string> ExtentFs::ListFiles() const {
  std::vector<std::string> names;
  for (const Inode& inode : inodes_) {
    if (inode.used) {
      names.push_back(inode.name);
    }
  }
  return names;
}

ciobase::Result<size_t> ExtentFs::FileSize(std::string_view name) const {
  int index = FindInode(name);
  if (index < 0) {
    return ciobase::NotFound("no such file");
  }
  return static_cast<size_t>(inodes_[index].size);
}

}  // namespace cioblock
