#include "src/blockio/extent_fs.h"

#include <algorithm>
#include <cstring>

#include "src/crypto/sha256.h"

namespace cioblock {

// Inode record (80 bytes):
//   [used u8][name 31 bytes zero-padded][size u64]
//   [extents: 4 x {start u32, count u32}]  (= 32 bytes)
//   [reserved to 80]
//
// Superblock (32 bytes):
//   [magic u32][version u32][inode_count u32][inode_blocks u32]
//   [journal_blocks u32][reserved u32][checksum u64 over bytes 0..24]
//
// Inode table block: InodesPerBlock() records, then a trailing u64
// checksum over everything before it. Plaintext deployments get corruption
// detection from the checksums; under EncryptedBlockClient the AEAD
// already rejects flipped bits, and the checksums catch software bugs.

namespace {

uint64_t Checksum64(ciobase::ByteSpan data) {
  auto digest = ciocrypto::Sha256::Hash(data);
  return ciobase::LoadLe64(digest.data());
}

}  // namespace

void ExtentFs::SerializeInode(const Inode& inode, uint8_t* p) {
  std::memset(p, 0, kInodeRecordSize);
  p[0] = inode.used ? 1 : 0;
  std::memcpy(p + 1, inode.name.data(), std::min(inode.name.size(), kMaxName));
  ciobase::StoreLe64(p + 32, inode.size);
  for (int e = 0; e < kMaxExtents; ++e) {
    ciobase::StoreLe32(p + 40 + e * 8, inode.extents[e].start);
    ciobase::StoreLe32(p + 44 + e * 8, inode.extents[e].count);
  }
}

ExtentFs::Inode ExtentFs::ParseInode(const uint8_t* p) {
  Inode inode;
  inode.used = p[0] != 0;
  if (!inode.used) {
    return Inode{};
  }
  size_t name_len = 0;
  while (name_len < kMaxName && p[1 + name_len] != 0) {
    ++name_len;
  }
  inode.name.assign(reinterpret_cast<const char*>(p + 1), name_len);
  inode.size = ciobase::LoadLe64(p + 32);
  for (int e = 0; e < kMaxExtents; ++e) {
    inode.extents[e].start = ciobase::LoadLe32(p + 40 + e * 8);
    inode.extents[e].count = ciobase::LoadLe32(p + 44 + e * 8);
  }
  return inode;
}

ciobase::Status ExtentFs::CheckGeometry() const {
  // Need room in a block for at least one inode record + checksum and for
  // a journal record (also guards the InodesPerBlock division).
  if (client_->block_size() < 128) {
    return ciobase::InvalidArgument("client block size too small for fs");
  }
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::WriteSuperblock() {
  ciobase::Buffer super(kSuperblockSize, 0);
  ciobase::StoreLe32(super.data(), kMagic);
  ciobase::StoreLe32(super.data() + 4, kVersion);
  ciobase::StoreLe32(super.data() + 8, inode_count_);
  ciobase::StoreLe32(super.data() + 12, inode_blocks_);
  ciobase::StoreLe32(super.data() + 16, kJournalBlocks);
  ciobase::StoreLe64(super.data() + 24,
                     Checksum64(ciobase::ByteSpan(super.data(), 24)));
  return client_->WriteBlock(0, super);
}

ciobase::Status ExtentFs::Format(uint32_t inode_count) {
  CIO_RETURN_IF_ERROR(CheckGeometry());
  inode_count_ = inode_count;
  inode_blocks_ = static_cast<uint32_t>(
      (inode_count + InodesPerBlock() - 1) / InodesPerBlock());
  if (DataStart() + 8 > client_->block_count()) {
    return ciobase::InvalidArgument("device too small");
  }
  CIO_RETURN_IF_ERROR(WriteSuperblock());
  // Kill any journal records left by a previous filesystem: a stale but
  // valid record would replay into the fresh image on the next mount.
  ciobase::Buffer dead(4, 0);
  for (uint32_t j = 0; j < kJournalBlocks; ++j) {
    CIO_RETURN_IF_ERROR(client_->WriteBlock(1 + j, dead));
  }
  inodes_.assign(inode_count_, Inode{});
  for (uint32_t b = 0; b < inode_blocks_; ++b) {
    CIO_RETURN_IF_ERROR(WriteInodeTableBlock(b));
  }
  block_used_.assign(client_->block_count() - DataStart(), false);
  journal_seq_ = 0;
  mounted_ = true;
  // A formatted filesystem should survive an immediate host crash.
  return client_->Flush();
}

ciobase::Status ExtentFs::LoadSuperblock() {
  CIO_RETURN_IF_ERROR(CheckGeometry());
  auto super = client_->ReadBlock(0);
  if (!super.ok()) {
    return super.status();
  }
  if (super->size() < kSuperblockSize ||
      ciobase::LoadLe32(super->data()) != kMagic) {
    return ciobase::FailedPrecondition("no filesystem (bad magic)");
  }
  if (ciobase::LoadLe64(super->data() + 24) !=
      Checksum64(ciobase::ByteSpan(super->data(), 24))) {
    return ciobase::Tampered("superblock checksum mismatch");
  }
  if (ciobase::LoadLe32(super->data() + 4) != kVersion) {
    return ciobase::FailedPrecondition("unsupported filesystem version");
  }
  inode_count_ = ciobase::LoadLe32(super->data() + 8);
  inode_blocks_ = ciobase::LoadLe32(super->data() + 12);
  if (ciobase::LoadLe32(super->data() + 16) != kJournalBlocks ||
      inode_count_ == 0 || inode_count_ > 4096 ||
      inode_blocks_ != (inode_count_ + InodesPerBlock() - 1) /
                           InodesPerBlock() ||
      DataStart() + 1 > client_->block_count()) {
    return ciobase::Tampered("superblock geometry inconsistent");
  }
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::ReadInodeTable(RepairReport* repair) {
  inodes_.assign(inode_count_, Inode{});
  size_t per_block = InodesPerBlock();
  size_t block_size = client_->block_size();
  for (uint32_t b = 0; b < inode_blocks_; ++b) {
    auto block = client_->ReadBlock(InodeTableStart() + b);
    bool bad = false;
    if (!block.ok()) {
      if (block.status().code() != ciobase::StatusCode::kTampered) {
        return block.status();  // transport trouble, not corruption
      }
      bad = true;
    } else if (block->empty()) {
      continue;  // never-written table block: all free
    } else if (block->size() < block_size ||
               ciobase::LoadLe64(block->data() + block_size - 8) !=
                   Checksum64(
                       ciobase::ByteSpan(block->data(), block_size - 8))) {
      bad = true;
    }
    if (bad) {
      if (repair == nullptr) {
        return ciobase::Tampered("inode table block corrupt");
      }
      ++repair->dropped_inode_blocks;
      continue;  // those inodes read as free; journal replay may revive them
    }
    for (size_t i = 0; i < per_block; ++i) {
      size_t index = b * per_block + i;
      if (index >= inode_count_) {
        break;
      }
      inodes_[index] = ParseInode(block->data() + i * kInodeRecordSize);
    }
  }
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::ReplayJournal(RepairReport* repair,
                                        uint32_t* replayed) {
  journal_seq_ = 0;
  struct Record {
    uint64_t seq;
    uint32_t op;
    uint32_t index;
    Inode inode;
  };
  std::vector<Record> records;
  for (uint32_t j = 0; j < kJournalBlocks; ++j) {
    auto block = client_->ReadBlock(1 + j);
    if (!block.ok()) {
      if (block.status().code() != ciobase::StatusCode::kTampered) {
        return block.status();
      }
      // A corrupt journal slot is legitimate crash debris (a torn commit
      // record): the record simply did not commit.
      ++stats_.invalid_journal_slots;
      if (repair != nullptr) {
        ++repair->invalid_journal_slots;
      }
      continue;
    }
    if (block->size() < kJournalRecordSize) {
      continue;  // empty or retired slot
    }
    const uint8_t* p = block->data();
    if (ciobase::LoadLe32(p) == 0) {
      continue;  // retired slot (zero-padded read of a dead record)
    }
    if (ciobase::LoadLe32(p) != kJournalMagic ||
        ciobase::LoadLe64(p + 104) !=
            Checksum64(ciobase::ByteSpan(p, 104))) {
      ++stats_.invalid_journal_slots;
      if (repair != nullptr) {
        ++repair->invalid_journal_slots;
      }
      continue;
    }
    Record rec;
    rec.op = ciobase::LoadLe32(p + 4);
    rec.seq = ciobase::LoadLe64(p + 8);
    rec.index = ciobase::LoadLe32(p + 16);
    rec.inode = ParseInode(p + 24);
    if ((rec.op != kJournalOpSet && rec.op != kJournalOpClear) ||
        rec.index >= inode_count_) {
      ++stats_.invalid_journal_slots;
      if (repair != nullptr) {
        ++repair->invalid_journal_slots;
      }
      continue;
    }
    records.push_back(std::move(rec));
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  for (const Record& rec : records) {
    journal_seq_ = std::max(journal_seq_, rec.seq);
    Inode target = rec.op == kJournalOpSet ? rec.inode : Inode{};
    uint8_t current[kInodeRecordSize];
    uint8_t wanted[kInodeRecordSize];
    SerializeInode(inodes_[rec.index], current);
    SerializeInode(target, wanted);
    if (std::memcmp(current, wanted, kInodeRecordSize) == 0) {
      continue;  // table already reflects this record
    }
    inodes_[rec.index] = std::move(target);
    CIO_RETURN_IF_ERROR(FlushInode(static_cast<int>(rec.index)));
    ++stats_.journal_replays;
    if (repair != nullptr) {
      ++repair->journal_replays;
    }
    if (replayed != nullptr) {
      ++*replayed;
    }
  }
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::ValidateInodesAndRebuildBitmap(
    RepairReport* repair) {
  std::vector<bool> used(client_->block_count() - DataStart(), false);
  size_t block_size = client_->block_size();
  for (size_t index = 0; index < inodes_.size(); ++index) {
    Inode& inode = inodes_[index];
    if (!inode.used) {
      continue;
    }
    std::vector<uint64_t> covered;
    bool valid = true;
    for (const Extent& extent : inode.extents) {
      for (uint32_t i = 0; i < extent.count && valid; ++i) {
        uint64_t block = static_cast<uint64_t>(extent.start) + i;
        if (block < DataStart() || block - DataStart() >= used.size() ||
            used[block - DataStart()]) {
          valid = false;  // out of range or overlapping another inode
          break;
        }
        covered.push_back(block - DataStart());
      }
    }
    if (valid && inode.size > covered.size() * block_size) {
      valid = false;  // claims more bytes than its extents hold
    }
    if (!valid) {
      if (repair == nullptr) {
        return ciobase::Tampered("inode extents inconsistent");
      }
      ++repair->dropped_inodes;
      inode = Inode{};
      CIO_RETURN_IF_ERROR(FlushInode(static_cast<int>(index)));
      continue;
    }
    for (uint64_t b : covered) {
      used[b] = true;
    }
  }
  block_used_ = std::move(used);
  return ciobase::OkStatus();
}

ciobase::Status ExtentFs::Mount() {
  CIO_RETURN_IF_ERROR(LoadSuperblock());
  CIO_RETURN_IF_ERROR(ReadInodeTable(nullptr));
  uint32_t replayed = 0;
  CIO_RETURN_IF_ERROR(ReplayJournal(nullptr, &replayed));
  CIO_RETURN_IF_ERROR(ValidateInodesAndRebuildBitmap(nullptr));
  if (replayed > 0) {
    // Make the replay repairs durable so the journal work is not redone
    // (and cannot be lost) on the next crash.
    CIO_RETURN_IF_ERROR(client_->Flush());
  }
  mounted_ = true;
  ++stats_.mounts;
  return ciobase::OkStatus();
}

ciobase::Result<ExtentFs::RepairReport> ExtentFs::ScanAndRepair() {
  RepairReport report;
  // No geometry, nothing to repair from.
  CIO_RETURN_IF_ERROR(LoadSuperblock());
  CIO_RETURN_IF_ERROR(ReadInodeTable(&report));
  CIO_RETURN_IF_ERROR(ReplayJournal(&report, nullptr));
  CIO_RETURN_IF_ERROR(ValidateInodesAndRebuildBitmap(&report));
  // Rewrite dropped table blocks clean so the next strict Mount succeeds.
  if (report.dropped_inode_blocks > 0) {
    for (uint32_t b = 0; b < inode_blocks_; ++b) {
      CIO_RETURN_IF_ERROR(WriteInodeTableBlock(b));
    }
  }
  if (report.repaired()) {
    CIO_RETURN_IF_ERROR(client_->Flush());
  }
  mounted_ = true;
  ++stats_.mounts;
  return report;
}

ciobase::Status ExtentFs::WriteInodeTableBlock(uint32_t table_block) {
  size_t per_block = InodesPerBlock();
  size_t block_size = client_->block_size();
  ciobase::Buffer data(block_size, 0);
  for (size_t i = 0; i < per_block; ++i) {
    size_t index = table_block * per_block + i;
    if (index >= inodes_.size()) {
      break;
    }
    SerializeInode(inodes_[index], data.data() + i * kInodeRecordSize);
  }
  ciobase::StoreLe64(data.data() + block_size - 8,
                     Checksum64(ciobase::ByteSpan(data.data(),
                                                  block_size - 8)));
  return client_->WriteBlock(InodeTableStart() + table_block, data);
}

ciobase::Status ExtentFs::FlushInode(int index) {
  return WriteInodeTableBlock(
      static_cast<uint32_t>(index / InodesPerBlock()));
}

ciobase::Status ExtentFs::AppendJournal(uint32_t op, uint32_t index,
                                        const Inode& record) {
  ++journal_seq_;
  ciobase::Buffer rec(kJournalRecordSize, 0);
  ciobase::StoreLe32(rec.data(), kJournalMagic);
  ciobase::StoreLe32(rec.data() + 4, op);
  ciobase::StoreLe64(rec.data() + 8, journal_seq_);
  ciobase::StoreLe32(rec.data() + 16, index);
  SerializeInode(record, rec.data() + 24);
  ciobase::StoreLe64(rec.data() + 104,
                     Checksum64(ciobase::ByteSpan(rec.data(), 104)));
  ++stats_.journal_appends;
  return client_->WriteBlock(1 + (journal_seq_ % kJournalBlocks), rec);
}

int ExtentFs::FindInode(std::string_view name) const {
  for (size_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_[i].used && inodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ExtentFs::FindFreeInode() const {
  for (size_t i = 0; i < inodes_.size(); ++i) {
    if (!inodes_[i].used) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t ExtentFs::FreeBlocks() const {
  size_t free_count = 0;
  for (bool used : block_used_) {
    if (!used) {
      ++free_count;
    }
  }
  return free_count;
}

ciobase::Result<std::vector<ExtentFs::Extent>> ExtentFs::AllocateExtents(
    size_t blocks) {
  std::vector<Extent> extents;
  size_t remaining = blocks;
  size_t i = 0;
  while (remaining > 0 && i < block_used_.size()) {
    if (block_used_[i]) {
      ++i;
      continue;
    }
    // Grow a run from i.
    size_t run = 0;
    while (i + run < block_used_.size() && !block_used_[i + run] &&
           run < remaining) {
      ++run;
    }
    if (extents.size() == kMaxExtents) {
      return ciobase::ResourceExhausted("file too fragmented");
    }
    extents.push_back(Extent{static_cast<uint32_t>(DataStart() + i),
                             static_cast<uint32_t>(run)});
    for (size_t j = 0; j < run; ++j) {
      block_used_[i + j] = true;
    }
    remaining -= run;
    i += run;
  }
  if (remaining > 0) {
    // Roll back.
    for (const Extent& extent : extents) {
      for (uint32_t j = 0; j < extent.count; ++j) {
        block_used_[extent.start - DataStart() + j] = false;
      }
    }
    return ciobase::ResourceExhausted("out of space");
  }
  return extents;
}

void ExtentFs::ReleaseExtents(const Inode& inode) {
  for (const Extent& extent : inode.extents) {
    for (uint32_t j = 0; j < extent.count; ++j) {
      uint64_t block = extent.start + j;
      if (block >= DataStart() &&
          block - DataStart() < block_used_.size()) {
        block_used_[block - DataStart()] = false;
      }
    }
  }
}

ciobase::Status ExtentFs::WriteFile(std::string_view name,
                                    ciobase::ByteSpan data) {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  if (name.empty() || name.size() > kMaxName) {
    return ciobase::InvalidArgument("bad file name");
  }
  int index = FindInode(name);
  bool existed = index >= 0;
  if (!existed) {
    index = FindFreeInode();
    if (index < 0) {
      return ciobase::ResourceExhausted("out of inodes");
    }
  }
  Inode old = inodes_[index];
  size_t block_size = client_->block_size();
  size_t blocks = (data.size() + block_size - 1) / block_size;

  // Free old extents first so rewrites can reuse their own space.
  if (existed) {
    ReleaseExtents(old);
  }
  auto extents = AllocateExtents(blocks);
  auto restore_old = [&]() {
    if (extents.ok()) {
      for (const Extent& extent : *extents) {
        for (uint32_t j = 0; j < extent.count; ++j) {
          block_used_[extent.start - DataStart() + j] = false;
        }
      }
    }
    if (existed) {
      for (const Extent& extent : old.extents) {
        for (uint32_t j = 0; j < extent.count; ++j) {
          block_used_[extent.start - DataStart() + j] = true;
        }
      }
    }
  };
  if (!extents.ok()) {
    restore_old();
    return extents.status();
  }

  // 1. Data lands in the NEW extents; the old version stays intact and
  //    referenced by the durable inode until the journal record commits.
  size_t written = 0;
  for (const Extent& extent : *extents) {
    for (uint32_t j = 0; j < extent.count; ++j) {
      size_t n = std::min(block_size, data.size() - written);
      ciobase::Status st =
          client_->WriteBlock(extent.start + j, data.subspan(written, n));
      if (!st.ok()) {
        // Nothing journaled yet: the old version is still the truth.
        restore_old();
        return st;
      }
      written += n;
    }
  }

  Inode updated;
  updated.used = true;
  updated.name = std::string(name);
  updated.size = data.size();
  for (int e = 0; e < kMaxExtents; ++e) {
    updated.extents[e] =
        e < static_cast<int>(extents->size()) ? (*extents)[e] : Extent{};
  }
  inodes_[index] = updated;

  // 2.+3. Journal the whole-inode commit record and flush: the commit
  // point. From here on we never roll the in-memory state back — on error
  // the commit is merely *uncertain* (the caller sees the error; a crash
  // resolves it via journal replay at the next mount).
  CIO_RETURN_IF_ERROR(
      AppendJournal(kJournalOpSet, static_cast<uint32_t>(index), updated));
  CIO_RETURN_IF_ERROR(client_->Flush());

  // 4. In-place table update; a crash here is repaired by replay. The
  //    trailing flush makes the table write (and, through an encrypted
  //    client, its generation-table entry) durable too, so a clean
  //    remount needs no replay and sees a self-consistent image.
  CIO_RETURN_IF_ERROR(FlushInode(index));
  return client_->Flush();
}

ciobase::Result<ciobase::Buffer> ExtentFs::ReadFile(std::string_view name) {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  int index = FindInode(name);
  if (index < 0) {
    return ciobase::NotFound("no such file");
  }
  const Inode& inode = inodes_[index];
  ciobase::Buffer out;
  out.reserve(inode.size);
  for (const Extent& extent : inode.extents) {
    for (uint32_t j = 0; j < extent.count && out.size() < inode.size; ++j) {
      auto block = client_->ReadBlock(extent.start + j);
      if (!block.ok()) {
        return block.status();
      }
      size_t take = std::min<size_t>(client_->block_size(),
                                     inode.size - out.size());
      block->resize(std::max(block->size(), take), 0);
      out.insert(out.end(), block->begin(),
                 block->begin() + static_cast<long>(take));
    }
  }
  if (out.size() != inode.size) {
    return ciobase::Tampered("file shorter than inode size");
  }
  return out;
}

ciobase::Status ExtentFs::DeleteFile(std::string_view name) {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  int index = FindInode(name);
  if (index < 0) {
    return ciobase::NotFound("no such file");
  }
  Inode old = inodes_[index];
  inodes_[index] = Inode{};
  ciobase::Status st =
      AppendJournal(kJournalOpClear, static_cast<uint32_t>(index), Inode{});
  if (!st.ok()) {
    inodes_[index] = old;  // nothing journaled: the file still exists
    return st;
  }
  // Commit point. Extents are released only once the clear record is
  // durable — reusing them earlier could let a new file claim blocks an
  // old (still-durable) inode references, which a crash would surface as
  // an extent overlap.
  CIO_RETURN_IF_ERROR(client_->Flush());
  ReleaseExtents(old);
  CIO_RETURN_IF_ERROR(FlushInode(index));
  return client_->Flush();
}

std::vector<std::string> ExtentFs::ListFiles() const {
  std::vector<std::string> names;
  for (const Inode& inode : inodes_) {
    if (inode.used) {
      names.push_back(inode.name);
    }
  }
  return names;
}

ciobase::Result<size_t> ExtentFs::FileSize(std::string_view name) const {
  int index = FindInode(name);
  if (index < 0) {
    return ciobase::NotFound("no such file");
  }
  return static_cast<size_t>(inodes_[index].size);
}

ciobase::Status ExtentFs::Flush() {
  if (!mounted_) {
    return ciobase::FailedPrecondition("not mounted");
  }
  return client_->Flush();
}

}  // namespace cioblock
