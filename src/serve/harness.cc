#include "src/serve/harness.h"

#include <algorithm>

namespace cioserve {

namespace {

void TuneTcpFast(cio::StackConfig& config) {
  config.tcp_tuning.initial_rto_ns = 1'000'000;
  config.tcp_tuning.min_rto_ns = 500'000;
  config.tcp_tuning.max_rto_ns = 4'000'000;
  config.tcp_tuning.max_retries = 4;
}

bool Contains(const std::vector<size_t>& indices, size_t i) {
  return std::find(indices.begin(), indices.end(), i) != indices.end();
}

}  // namespace

MultiClientWorld::MultiClientWorld(const Options& options) {
  fabric = std::make_unique<cionet::Fabric>(&clock, options.seed,
                                            options.fabric_options);
  ciobase::Buffer psk =
      ciobase::BufferFromString("attestation-derived-link-key-0001");
  attestation_gated_ = !options.attestation_key.empty();

  ServerConfig server_opts = options.server_config;
  if (attestation_gated_) {
    server_opts.require_attestation = true;
    server_opts.attestation_key = options.attestation_key;
  }

  // Server: node id 1 (IP 10.0.0.1). The stack-level accept backlog must
  // cover a full client herd arriving in one burst; admission control at
  // the server layer is what actually bounds the table.
  cio::StackConfig server_config =
      cio::StackConfig::DefaultsFor(options.profile, 1);
  server_config.seed = options.seed * 1000;
  server_config.psk = psk;
  server_config.rekey_after_records = options.rekey_after_records;
  server_config.rekey_after_bytes = options.rekey_after_bytes;
  server_config.accept_backlog =
      std::max<size_t>(64, options.num_clients + 8);
  server_config.profiler = options.server_profiler;
  if (options.fast_tcp) {
    TuneTcpFast(server_config);
  }
  server_node = std::make_unique<cio::ConfidentialNode>(fabric.get(), &clock,
                                                        server_config);
  server = std::make_unique<ConfidentialServer>(server_node.get(), &clock,
                                                server_opts);

  // Second instance (migration target): node id 2 + num_clients, same
  // port, same ServerConfig — a fleet peer, not a different service.
  if (options.second_server) {
    cio::StackConfig config2 = cio::StackConfig::DefaultsFor(
        options.profile, static_cast<uint32_t>(2 + options.num_clients));
    config2.seed = options.seed * 1000 + 500'000;
    config2.psk = psk;
    config2.accept_backlog = server_config.accept_backlog;
    config2.rekey_after_records = options.rekey_after_records;
    config2.rekey_after_bytes = options.rekey_after_bytes;
    if (options.fast_tcp) {
      TuneTcpFast(config2);
    }
    server2_node = std::make_unique<cio::ConfidentialNode>(fabric.get(),
                                                           &clock, config2);
    server2 = std::make_unique<ConfidentialServer>(server2_node.get(), &clock,
                                                   server_opts);
  }

  // Clients: node ids 2..N+1 (node id caps at 254, so <= 253 clients).
  for (size_t i = 0; i < options.num_clients; ++i) {
    cio::StackConfig client_config = cio::StackConfig::DefaultsFor(
        options.profile, static_cast<uint32_t>(2 + i));
    client_config.seed = options.seed * 1000 + 7 * (i + 1);
    client_config.psk = psk;
    client_config.rekey_after_records = options.rekey_after_records;
    client_config.rekey_after_bytes = options.rekey_after_bytes;
    if (attestation_gated_ && !Contains(options.keyless_clients, i)) {
      client_config.attestation_key =
          Contains(options.forged_clients, i)
              ? ciobase::BufferFromString("forged-attestation-key")
              : options.attestation_key;
      client_config.attest_stale_probe = Contains(options.stale_clients, i);
    }
    if (options.fast_tcp) {
      TuneTcpFast(client_config);
    }
    clients.push_back(std::make_unique<cio::ConfidentialNode>(
        fabric.get(), &clock, client_config));
  }
}

void MultiClientWorld::Pump(uint64_t step_ns) {
  server->Poll();
  if (server2 != nullptr) {
    server2->Poll();
  }
  for (auto& client : clients) {
    client->Poll();
  }
  clock.Advance(step_ns);
}

bool MultiClientWorld::PumpUntil(const std::function<bool()>& done,
                                 int max_rounds, uint64_t step_ns) {
  for (int round = 0; round < max_rounds; ++round) {
    Pump(step_ns);
    if (done()) {
      return true;
    }
  }
  return false;
}

bool MultiClientWorld::EstablishAll(int max_rounds) {
  if (!server->Start().ok()) {
    return false;
  }
  if (server2 != nullptr && !server2->Start().ok()) {
    return false;
  }
  for (auto& client : clients) {
    if (!client->Connect(server_node->ip(), server->config().port).ok()) {
      return false;
    }
  }
  return PumpUntil(
      [&] {
        size_t expected = 0;
        for (auto& client : clients) {
          if (client->denied()) {
            continue;  // rejected probe: settled, not counted established
          }
          if (!client->Ready()) {
            return false;
          }
          if (attestation_gated_ && !client->admitted()) {
            return false;
          }
          ++expected;
        }
        return server->EstablishedConnections().size() == expected;
      },
      max_rounds);
}

size_t MultiClientWorld::EchoRound() {
  for (ConfidentialServer* srv : {server.get(), server2.get()}) {
    if (srv == nullptr) {
      continue;
    }
    for (;;) {
      auto incoming = srv->Receive();
      if (!incoming.ok()) {
        break;
      }
      echo_queue_.push_back(PendingEcho{srv, std::move(*incoming)});
    }
  }
  size_t echoed = 0;
  // Retry the queue in arrival order; whatever still cannot go out
  // (connection handshaking after a fault, send queue over budget) waits
  // for a later round. Connection ids survive reattach, so a parked
  // connection's echoes drain once the client reconnects.
  size_t attempts = echo_queue_.size();
  for (size_t i = 0; i < attempts; ++i) {
    PendingEcho pending = std::move(echo_queue_.front());
    echo_queue_.pop_front();
    if (pending.srv->Send(pending.incoming.conn, pending.incoming.message)
            .ok()) {
      ++echoed;
    } else {
      echo_queue_.push_back(std::move(pending));
    }
  }
  return echoed;
}

}  // namespace cioserve
