#include "src/serve/server.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/prof/profiler.h"

namespace cioserve {

std::string_view ConnStateName(ConnState state) {
  switch (state) {
    case ConnState::kHandshaking:
      return "handshaking";
    case ConnState::kAttesting:
      return "attesting";
    case ConnState::kEstablished:
      return "established";
    case ConnState::kDraining:
      return "draining";
    case ConnState::kMigrating:
      return "migrating";
    case ConnState::kClosed:
      return "closed";
  }
  return "?";
}

ConfidentialServer::ConfidentialServer(cio::ConfidentialNode* node,
                                       ciobase::SimClock* clock,
                                       ServerConfig config)
    : node_(node),
      sockets_(node->sockets()),
      clock_(clock),
      config_(std::move(config)),
      rng_(node->config().seed ^ 0xa77e57u) {
  if (config_.require_attestation) {
    authority_ = std::make_unique<ciotee::AttestationAuthority>(
        config_.attestation_key);
    expected_measurement_ = ciotee::Measure(config_.expected_identity, {});
  }
}

ciobase::Status ConfidentialServer::Start() {
  if (sockets_ == nullptr) {
    return ciobase::FailedPrecondition("node failed to initialize");
  }
  auto listener = sockets_->Listen(config_.port);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = *listener;
  listening_ = true;
  return ciobase::OkStatus();
}

void ConfidentialServer::AcceptPending() {
  CIO_PROF_SCOPE(node_->costs().profiler(), "server.accept");
  auto pending = sockets_->AcceptPending(listener_);
  if (!pending.ok()) {
    return;
  }
  ciohost::CounterSet& counters = node_->observability().counters();
  for (size_t i = 0; i < *pending; ++i) {
    auto accepted = sockets_->Accept(listener_);
    if (!accepted.ok()) {
      break;
    }
    cionet::SocketId socket = *accepted;
    auto peer = sockets_->Peer(socket);
    if (!peer.ok()) {
      (void)sockets_->Abort(socket);
      continue;
    }

    // A fresh connection from an address we already serve is the client's
    // recovery path reconnecting: the server may not have noticed the fault
    // (nothing in flight means nothing failed server-side), so the accept
    // itself is the fault signal. Park the old connection's session first,
    // then let the reattach branch below pick it up. Erase the stale table
    // entry now — the reattached connection reuses its id.
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->second.session != nullptr && it->second.peer == *peer &&
          it->second.state != ConnState::kClosed) {
        ParkConnection(it->second);
        ++stats_.closed;
        counters.Add("server.closed");
        connections_.erase(it);
        break;
      }
    }

    // Admission control: beyond the table cap, refuse NOW with an abortive
    // RST. The client gets a typed failure (kLinkReset from its receive
    // path) instead of a silent squat in a queue; no server memory grows.
    if (connections_.size() >= config_.max_connections) {
      (void)sockets_->Abort(socket);
      ++stats_.rejected_admission;
      counters.Add("server.rejected_admission");
      continue;
    }

    Connection conn;
    conn.socket = socket;
    conn.peer = *peer;
    conn.state = ConnState::kHandshaking;
    conn.opened_ns = clock_->now_ns();

    auto parked = parked_.find(peer->value);
    if (parked != parked_.end()) {
      // Reattach: the parked Session keeps the sequence numbers and the
      // resend window, so after the TLS restart both sides replay and the
      // receiver's dedup makes delivery exactly-once across the fault. The
      // connection also keeps its id — the application's handle survives.
      conn.id = parked->second.id;
      conn.session = std::move(parked->second.session);
      conn.reattached = true;
      parked_.erase(parked);
      ++stats_.recovered;
      counters.Add("server.recovered");
    } else {
      conn.id = next_conn_id_++;
      const cio::StackConfig& node_config = node_->config();
      size_t resend_cap = node_config.recovery.enabled
                              ? node_config.recovery.resend_window
                              : 0;
      conn.session = std::make_unique<cio::Session>(
          node_config.use_tls, node_config.psk, resend_cap,
          cio::RekeyPolicy{node_config.rekey_after_records,
                           node_config.rekey_after_bytes});
    }
    conn.session->set_profiler(node_->costs().profiler());
    conn.session->Start(ciotls::TlsRole::kServer,
                        node_->config().seed + 1 + conn.id);
    ++stats_.accepted;
    counters.Add("server.accepted");
    connections_.emplace(conn.id, std::move(conn));
  }
}

void ConfidentialServer::ParkConnection(Connection& conn) {
  if (cio::L5Channel* l5 = node_->l5(); l5 != nullptr) {
    // Retire this socket's SQ/CQ state (queued entries, undelivered events,
    // registered slots) without disturbing the other connections' rings.
    l5->CancelSocket(conn.socket);
  }
  (void)sockets_->Abort(conn.socket);
  if (conn.session != nullptr && node_->config().recovery.enabled &&
      conn.state != ConnState::kDraining &&
      conn.state != ConnState::kMigrating) {
    // (A kMigrating session is never parked: its authoritative copy already
    // left for the other instance — parking the stale local copy would hand
    // the client two diverging continuations.)
    conn.session->ResetChannel();
    parked_[conn.peer.value] =
        ParkedSession{std::move(conn.session), clock_->now_ns(), conn.id};
  }
  conn.session.reset();
  conn.state = ConnState::kClosed;
}

void ConfidentialServer::CloseAndRelease(Connection& conn) {
  (void)sockets_->Close(conn.socket);
  if (cio::L5Channel* l5 = node_->l5(); l5 != nullptr) {
    // The FIN is queued below the SQ/CQ layer, so this releases only what
    // the socket still pins up here: armed receive entries, held
    // completions, registered pool slots. Without it every orderly close
    // leaked its receive slots until pool exhaustion (the park/reattach
    // audit: parked sessions release at park time, closed ones here).
    l5->CancelSocket(conn.socket);
  }
  conn.session.reset();
  conn.state = ConnState::kClosed;
}

bool ConfidentialServer::PumpConnection(Connection& conn) {
  for (size_t chunk = 0; chunk < config_.max_rx_chunks_per_round; ++chunk) {
    auto got = sockets_->ReceiveBytes(conn.socket, config_.rx_chunk_bytes,
                                      rx_scratch_);
    if (!got.ok()) {
      if (got.status().code() == ciobase::StatusCode::kFailedPrecondition) {
        // Orderly EOF: the client closed on purpose. Finish our side too.
        CloseAndRelease(conn);
        return false;
      }
      // kLinkReset (or the socket vanished): transport fault — park for
      // the client's reconnect.
      ParkConnection(conn);
      return false;
    }
    if (*got == 0) {
      break;
    }
    ciobase::Status ingested = conn.session->Ingest(rx_scratch_);
    if (!ingested.ok()) {
      if (ingested.code() == ciobase::StatusCode::kTampered) {
        // Hostile framing inside the protected stream: terminal for this
        // connection, and nothing worth parking.
        ++stats_.tampered;
        node_->observability().counters().Add("server.tampered");
        (void)sockets_->Abort(conn.socket);
        conn.session.reset();
        conn.state = ConnState::kClosed;
      } else {
        ParkConnection(conn);  // corrupt TLS stream: recoverable fault
      }
      return false;
    }
  }
  if (conn.session->TlsFailed()) {
    ParkConnection(conn);
    return false;
  }
  if (conn.state == ConnState::kHandshaking && conn.session->Established()) {
    if (config_.require_attestation) {
      // Channel up, admission pending: challenge with a fresh nonce. Every
      // transport (re)establishment re-attests — a reattach is a new
      // transcript, so yesterday's report cannot cover it.
      conn.state = ConnState::kAttesting;
      conn.challenge = rng_.Bytes(16);
      (void)conn.session->SendControl(cio::CtrlType::kAttestChallenge,
                                      conn.challenge);
    } else {
      Admit(conn);
    }
  }
  if (conn.state == ConnState::kAttesting) {
    PumpAdmission(conn);
  }
  if (conn.state == ConnState::kEstablished) {
    // Stray control frames on an admitted connection (duplicate reports)
    // are drained and ignored — never growth, never a fault.
    while (conn.session->PollControl().has_value()) {
    }
  }
  // Application delivery is held until admission: frames a client replays
  // ahead of its report sit in the session inbox (dedup already counted
  // them) and surface the moment the connection is admitted.
  while ((conn.state == ConnState::kEstablished ||
          conn.state == ConnState::kDraining) &&
         conn.session->HasInbound()) {
    auto message = conn.session->Receive();
    if (!message.ok()) {
      break;
    }
    inbox_.push_back(Incoming{conn.id, std::move(*message)});
  }
  return true;
}

void ConfidentialServer::Admit(Connection& conn) {
  conn.state = ConnState::kEstablished;
  conn.challenge.clear();
  if (conn.reattached) {
    // Channel is back: replay the resend window; the client's sequence
    // dedup drops whatever it already had.
    (void)conn.session->Replay();
    conn.reattached = false;
  }
}

ciobase::Status ConfidentialServer::VerifyReport(
    const Connection& conn, ciobase::ByteSpan report_bytes) const {
  if (report_bytes.empty()) {
    return ciobase::Unauthenticated("missing attestation report");
  }
  auto report = ciotee::AttestationReport::Parse(report_bytes);
  if (!report.ok()) {
    return ciobase::Unauthenticated("malformed attestation report");
  }
  // The report must be bound to THIS connection: nonce = H(challenge ||
  // transcript). Forged key -> MAC invalid; replayed/stale report -> nonce
  // mismatch; wrong build -> measurement mismatch. All one typed outcome.
  ciocrypto::Sha256Digest transcript{};
  if (conn.session->tls() != nullptr) {
    transcript = conn.session->tls()->transcript_hash();
  }
  ciobase::Status verdict = authority_->Verify(
      *report, expected_measurement_,
      ciotee::BindNonce(conn.challenge, transcript));
  if (!verdict.ok()) {
    return ciobase::Unauthenticated(verdict.message());
  }
  return ciobase::OkStatus();
}

void ConfidentialServer::PumpAdmission(Connection& conn) {
  while (auto ctrl = conn.session->PollControl()) {
    if (static_cast<cio::CtrlType>(ctrl->type) !=
        cio::CtrlType::kAttestReport) {
      continue;
    }
    ciobase::Status verdict = VerifyReport(conn, ctrl->body);
    ciohost::CounterSet& counters = node_->observability().counters();
    if (verdict.ok()) {
      ++stats_.admitted;
      counters.Add("server.admitted");
      (void)conn.session->SendControl(cio::CtrlType::kAdmitted, {});
      Admit(conn);
    } else {
      // Typed rejection, counted OUTSIDE the leakage score: the denial is
      // flushed to the client (so it stops retrying a hopeless credential),
      // then the socket drains shut. Nothing is parked — an unadmitted
      // session has no state worth recovering.
      ++stats_.rejected_unauthenticated;
      counters.Add("server.rejected_unauthenticated");
      (void)conn.session->SendControl(
          cio::CtrlType::kDenied,
          ciobase::BufferFromString(verdict.message()));
      conn.state = ConnState::kDraining;
    }
    return;
  }
}

void ConfidentialServer::FlushOutbound() {
  CIO_PROF_SCOPE(node_->costs().profiler(), "server.egress");
  // Deficit round-robin over everyone with queued output: each backlogged
  // connection accrues one quantum per round and sends only while its
  // deficit lasts, so a hot client cannot monopolize the transport's batch
  // slots. Draining connections flush here too, then FIN.
  const size_t deficit_cap = config_.drr_quantum_bytes * 8;
  // Async egress: each connection's slice goes into the submission queue
  // (sealed bytes copied into registered slots, no boundary crossing), and
  // ONE doorbell after the loop carries the whole round's batch. Profiles
  // without the async datapath fall back to the per-call socket layer.
  cio::L5Channel* l5 = node_->l5();
  const bool async = l5 != nullptr && l5->queues_ready();
  bool submitted = false;
  for (auto& [id, conn] : connections_) {
    if (conn.state == ConnState::kClosed || conn.session == nullptr) {
      continue;
    }
    if (!conn.session->HasOutbound()) {
      conn.drr_deficit = 0;  // not backlogged: no credit hoarding
      if ((conn.state == ConnState::kDraining ||
           conn.state == ConnState::kMigrating) &&
          !(async && l5->HasInFlightSends(conn.socket))) {
        // Async egress: "no session backlog" is not "flushed" — wait until
        // the SQ has no entries left for this socket before the FIN.
        // (kMigrating rides the same machinery: once the redirect is out,
        // nothing local remains authoritative and the socket closes.)
        CloseAndRelease(conn);
      }
      continue;
    }
    conn.drr_deficit =
        std::min(conn.drr_deficit + config_.drr_quantum_bytes, deficit_cap);
    while (conn.session->HasOutbound() && conn.drr_deficit > 0) {
      const ciobase::Buffer& pending = conn.session->outbound();
      size_t want = std::min(pending.size(), conn.drr_deficit);
      ciobase::ByteSpan slice(pending.data(), want);
      auto sent = async ? l5->SubmitStream(conn.socket, slice)
                        : sockets_->SendBytes(conn.socket, slice);
      if (!sent.ok()) {
        ParkConnection(conn);
        break;
      }
      if (*sent == 0) {
        break;  // transport backpressure: keep the deficit for next round
      }
      submitted = true;
      conn.session->ConsumeOutbound(*sent);
      conn.drr_deficit -= *sent;
    }
    if ((conn.state == ConnState::kDraining ||
         conn.state == ConnState::kMigrating) &&
        conn.session != nullptr && !conn.session->HasOutbound() &&
        !(async && l5->HasInFlightSends(conn.socket))) {
      CloseAndRelease(conn);
    }
  }
  if (async && submitted) {
    // A tampered completion here is surfaced again by the next receive
    // poll, which parks the affected connection; the doorbell itself only
    // needs to push the batch.
    (void)l5->Doorbell();
  }
}

void ConfidentialServer::Reap() {
  CIO_PROF_SCOPE(node_->costs().profiler(), "server.reap");
  ciohost::CounterSet& counters = node_->observability().counters();
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second.state == ConnState::kClosed) {
      ++stats_.closed;
      counters.Add("server.closed");
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  uint64_t now = clock_->now_ns();
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (now - it->second.parked_ns > config_.reattach_timeout_ns) {
      // The client never came back: its unacknowledged messages are gone
      // for good (they would have been counted lost by the peer anyway).
      ++stats_.expired_parked;
      counters.Add("server.expired_parked");
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConfidentialServer::UpdateGauges() {
  node_->observability().counters().Set("server.active",
                                        connections_.size());
}

void ConfidentialServer::Poll() {
  if (!listening_ || sockets_ == nullptr) {
    return;
  }
  CIO_PROF_SCOPE(node_->costs().profiler(), "server.round");
  ciobase::Status link = sockets_->Poll();
  if (!link.ok() && link.code() == ciobase::StatusCode::kTimedOut) {
    // The transport watchdog exhausted its reset budget: the link under
    // EVERY connection is dead for good. Park them all; if the host never
    // relents the parked sessions expire on their own.
    for (auto& [id, conn] : connections_) {
      if (conn.state != ConnState::kClosed) {
        ParkConnection(conn);
      }
    }
  }
  // (kLinkReset: the transport already reattached its ring; TCP
  // retransmission replays the frames that died with it. Nothing to do.)

  AcceptPending();

  {
    CIO_PROF_SCOPE(node_->costs().profiler(), "server.pump");
    uint64_t now = clock_->now_ns();
    for (auto& [id, conn] : connections_) {
      if (conn.state == ConnState::kClosed || conn.session == nullptr) {
        continue;
      }
      if ((conn.state == ConnState::kHandshaking ||
           conn.state == ConnState::kAttesting) &&
          now - conn.opened_ns > config_.handshake_timeout_ns) {
        // A slow handshake squats a table slot; bound the squat. Parked
        // reattach state (if any) stays parked for a genuine retry.
        ParkConnection(conn);
        continue;
      }
      // Readiness gate: idle connections cost one query, not a receive
      // round trip across the boundary.
      auto readable = sockets_->Readable(conn.socket);
      if (!readable.ok()) {
        ParkConnection(conn);
        continue;
      }
      if (*readable) {
        (void)PumpConnection(conn);
      }
    }
  }

  FlushOutbound();
  Reap();
  UpdateGauges();
}

ciobase::Result<Incoming> ConfidentialServer::Receive() {
  if (inbox_.empty()) {
    return ciobase::Unavailable("no message");
  }
  Incoming incoming = std::move(inbox_.front());
  inbox_.pop_front();
  return incoming;
}

ciobase::Status ConfidentialServer::Send(ConnId id,
                                         ciobase::ByteSpan message) {
  auto it = connections_.find(id);
  if (it == connections_.end() || it->second.session == nullptr) {
    return ciobase::NotFound("no such connection");
  }
  Connection& conn = it->second;
  if (conn.state != ConnState::kEstablished) {
    return ciobase::FailedPrecondition("connection not established");
  }
  // Backpressure: the per-connection output queue is a hard byte budget.
  // Refusing here (typed, recoverable by the app) beats growing without
  // bound while a slow client drains.
  if (conn.session->outbound().size() + message.size() >
      config_.max_send_queue_bytes) {
    ++stats_.send_queue_rejections;
    return ciobase::ResourceExhausted("send queue over budget");
  }
  return conn.session->Send(message);
}

ciobase::Status ConfidentialServer::Drain(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end() || it->second.session == nullptr) {
    return ciobase::NotFound("no such connection");
  }
  Connection& conn = it->second;
  if (conn.state != ConnState::kEstablished &&
      conn.state != ConnState::kHandshaking) {
    return ciobase::OkStatus();  // already draining or closed
  }
  conn.state = ConnState::kDraining;  // flush, then FIN (FlushOutbound)
  return ciobase::OkStatus();
}

bool ConfidentialServer::ServesPeer(cionet::Ipv4Address peer) const {
  if (parked_.find(peer.value) != parked_.end()) {
    return true;
  }
  for (const auto& [id, conn] : connections_) {
    if (conn.peer == peer && conn.state != ConnState::kClosed) {
      return true;
    }
  }
  return false;
}

ciobase::Result<ConnState> ConfidentialServer::StateOf(ConnId id) const {
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return ciobase::NotFound("no such connection");
  }
  return it->second.state;
}

std::vector<ConnId> ConfidentialServer::EstablishedConnections() const {
  std::vector<ConnId> ids;
  for (const auto& [id, conn] : connections_) {
    if (conn.state == ConnState::kEstablished) {
      ids.push_back(id);
    }
  }
  return ids;
}

const cio::Session* ConfidentialServer::SessionOf(ConnId id) const {
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return nullptr;
  }
  return it->second.session.get();
}

ciobase::Result<ciobase::Buffer> ConfidentialServer::MigrateSession(
    ConnId id, SessionVault& vault, cionet::Ipv4Address target_ip,
    uint16_t target_port) {
  auto it = connections_.find(id);
  if (it == connections_.end() || it->second.session == nullptr) {
    return ciobase::NotFound("no such connection");
  }
  Connection& conn = it->second;
  if (conn.state != ConnState::kEstablished) {
    return ciobase::FailedPrecondition("connection not established");
  }
  // Serialize FIRST: the exported state must not include the redirect we
  // queue below (the importing instance would otherwise believe the client
  // already has it and skip the replay that covers it).
  ciobase::Buffer state = conn.session->SerializeState();
  // Envelope: [peer_ip u32 LE][session state] — the importer parks the
  // session under the peer's address so the redirected reconnect reattaches.
  ciobase::Buffer envelope(4 + state.size());
  ciobase::StoreLe32(envelope.data(), conn.peer.value);
  std::copy(state.begin(), state.end(), envelope.begin() + 4);
  ciobase::Buffer sealed = vault.Seal(envelope);

  ciobase::Buffer redirect(6);
  ciobase::StoreLe32(redirect.data(), target_ip.value);
  ciobase::StoreLe16(redirect.data() + 4, target_port);
  (void)conn.session->SendControl(cio::CtrlType::kRedirect, redirect);
  // From here this instance is no longer authoritative for the session: no
  // new application sends, no inbox delivery, just the redirect flushing
  // and the socket closing (FlushOutbound). The session is never parked —
  // the sealed export is the only continuation.
  conn.state = ConnState::kMigrating;
  ++stats_.migrated_out;
  node_->observability().counters().Add("server.migrated_out");
  return sealed;
}

ciobase::Status ConfidentialServer::ImportSession(ciobase::ByteSpan sealed,
                                                  SessionVault& vault) {
  auto envelope = vault.Open(sealed);
  if (!envelope.ok()) {
    return envelope.status();  // typed kTampered from the vault
  }
  if (envelope->size() < 4) {
    return ciobase::Tampered("migrated session envelope truncated");
  }
  uint32_t peer = ciobase::LoadLe32(envelope->data());
  const cio::StackConfig& node_config = node_->config();
  auto session = cio::Session::Restore(
      ciobase::ByteSpan(envelope->data() + 4, envelope->size() - 4),
      cio::RekeyPolicy{node_config.rekey_after_records,
                       node_config.rekey_after_bytes});
  if (!session.ok()) {
    return session.status();
  }
  (*session)->set_profiler(node_->costs().profiler());
  // Park under the embedded peer address: the client's redirected reconnect
  // is an ordinary reattach from here — fresh TLS from the shared PSK,
  // re-attestation when gated, both sides replay, sequence dedup keeps
  // delivery exactly-once across the instance move.
  parked_[peer] =
      ParkedSession{std::move(*session), clock_->now_ns(), next_conn_id_++};
  ++stats_.migrated_in;
  node_->observability().counters().Add("server.migrated_in");
  return ciobase::OkStatus();
}

}  // namespace cioserve
