// ConfidentialServer: a multi-tenant confidential server on one guest stack.
//
// The single-socket ConfidentialNode (src/cio/engine.*) demonstrates the
// paper's datapath for a point-to-point link. A real confidential service
// terminates MANY clients at once, all multiplexed over the same hardened
// L2 transport and the same single-distrust L5 boundary — which raises
// exactly the problems this subsystem owns:
//
//  * Connection table. Every client gets its own cio::Session (TLS, framing,
//    resend window) keyed by a connection id, with an explicit lifecycle:
//    handshaking -> established -> draining -> closed. The per-connection
//    recovery state is the PR-2 machinery, shared with the engine through
//    cio::Session — one implementation, two owners.
//
//  * Readiness-driven poll loop. One Poll() drives the transport once, then
//    visits only connections the SocketLayer reports readable (plus anyone
//    with queued output). Idle connections cost one readiness query, not a
//    full receive round trip across the L5 boundary.
//
//  * Fair scheduling. Outbound transport capacity is shared by deficit
//    round-robin: each established connection accrues a byte quantum per
//    round and may only flush while its deficit lasts. A hot client cannot
//    monopolize the L2 batch slots and starve the others.
//
//  * Admission control and backpressure. A connection beyond
//    max_connections is refused at accept (abortive RST — the client sees a
//    typed kLinkReset, never a hang) and counted. Established connections
//    have a send-queue byte cap; Send() beyond it returns
//    kResourceExhausted to the application instead of growing memory.
//
//  * Fault recovery. When a client's transport dies mid-conversation the
//    server parks the Session (sequence numbers + resend window) keyed by
//    the peer's address. The client's engine reconnects (PR-2 client-side
//    backoff); the fresh accept from the same address reattaches the parked
//    Session, TLS re-establishes, both sides replay their windows, and the
//    sequence numbers dedup — exactly-once delivery across the fault, per
//    connection.
//
// Single-threaded and poll-driven like everything else in the simulation:
// call Poll() every simulation round.

#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/cio/engine.h"
#include "src/cio/session.h"
#include "src/serve/session_vault.h"
#include "src/tee/attestation.h"

namespace cioserve {

// Connection lifecycle. kHandshaking covers TCP establishment + the TLS
// flight; kAttesting means the channel is up but the client still owes a
// transcript-bound attestation report (attestation-gated admission);
// kDraining means Close was requested and queued output is still flushing
// (no new Sends accepted); kMigrating means the session was exported to
// another instance and only the redirect still needs to flush; kClosed
// connections are reaped.
enum class ConnState {
  kHandshaking,
  kAttesting,
  kEstablished,
  kDraining,
  kMigrating,
  kClosed,
};

std::string_view ConnStateName(ConnState state);

using ConnId = uint64_t;

struct ServerConfig {
  uint16_t port = 443;

  // Admission control: connections at the cap are refused with an abortive
  // RST and counted (stats().rejected_admission).
  size_t max_connections = 64;

  // Backpressure: per-connection queued-output byte cap. Send() returns
  // kResourceExhausted beyond it.
  size_t max_send_queue_bytes = 256 << 10;

  // Deficit round-robin: bytes of transport credit each established
  // connection accrues per Poll() round.
  size_t drr_quantum_bytes = 4096;

  // Inbound chunking per connection per round (bounds one client's share
  // of a round even when its pipe is full).
  size_t rx_chunk_bytes = 16384;
  size_t max_rx_chunks_per_round = 4;

  // How long a faulted connection's Session stays parked awaiting the
  // client's reconnect before its state (and resend window) is dropped.
  uint64_t reattach_timeout_ns = 500'000'000;

  // A connection stuck in kHandshaking (or kAttesting) longer than this is
  // aborted (slow handshakes hold a table slot; this bounds the squat).
  uint64_t handshake_timeout_ns = 2'000'000'000;

  // Attestation-gated admission. When enabled, every established channel
  // (including reattaches after a fault) is challenged with a fresh nonce
  // and must answer with a ciotee::AttestationReport over
  // {Measure(expected_identity), H(challenge || TLS transcript)} issued
  // under `attestation_key`. Missing/forged/stale reports are typed
  // kUnauthenticated rejections (stats().rejected_unauthenticated), sent to
  // the client as a kCtrlDenied before the close — never counted against
  // the leakage score, never parked.
  bool require_attestation = false;
  ciobase::Buffer attestation_key;
  std::string expected_identity = "cio-node";
};

// One inbound application message, tagged with the connection it came from.
struct Incoming {
  ConnId conn = 0;
  ciobase::Buffer message;
};

class ConfidentialServer {
 public:
  // The server multiplexes over `node`'s SocketLayer; the node supplies the
  // whole stack assembly (profile machinery, costs, observability) but its
  // own single-socket Connect/Listen API stays unused.
  ConfidentialServer(cio::ConfidentialNode* node, ciobase::SimClock* clock,
                     ServerConfig config);

  ConfidentialServer(const ConfidentialServer&) = delete;
  ConfidentialServer& operator=(const ConfidentialServer&) = delete;

  // Starts listening. The accept backlog is the node's stack-level knob
  // (StackConfig::accept_backlog); admission control here is the layer
  // above it.
  ciobase::Status Start();

  // One scheduling round: drive the transport, accept (or refuse) pending
  // connections, pump every readable connection's Session, flush outbound
  // by deficit round-robin, reap the dead, expire parked sessions.
  void Poll();

  // Next inbound message from any connection, kUnavailable when none.
  ciobase::Result<Incoming> Receive();

  // Queues one message to a connection. kNotFound for unknown ids,
  // kFailedPrecondition unless established, kResourceExhausted when the
  // connection's send queue is over budget.
  ciobase::Status Send(ConnId conn, ciobase::ByteSpan message);

  // Orderly shutdown: flush what is queued, then FIN. The connection
  // refuses new Sends immediately (kDraining).
  ciobase::Status Drain(ConnId conn);

  // --- Live migration --------------------------------------------------------

  // Exports an established connection's session for resumption on another
  // instance: serializes the durable session state (sequence numbers,
  // resend window, undelivered inbox), seals it through `vault`, queues a
  // kCtrlRedirect({target_ip, target_port}) to the client, and puts the
  // connection in kMigrating (the redirect flushes, then the socket
  // closes; the session is never parked here again). Anything still in
  // flight rides the serialized resend window and the client's replay.
  // Returns the sealed blob to transfer via the confidential storage path.
  ciobase::Result<ciobase::Buffer> MigrateSession(ConnId conn,
                                                  SessionVault& vault,
                                                  cionet::Ipv4Address target_ip,
                                                  uint16_t target_port);

  // Imports a sealed session exported by another instance: unseals through
  // `vault` (kTampered on any integrity/rollback/replay violation),
  // restores the cio::Session, and parks it keyed by the embedded peer
  // address — the client's redirected reconnect reattaches it, TLS
  // re-establishes from the attestation-bound PSK, both sides replay, and
  // the sequence numbers keep delivery exactly-once across instances.
  ciobase::Status ImportSession(ciobase::ByteSpan sealed, SessionVault& vault);

  struct Stats {
    uint64_t accepted = 0;            // connections admitted
    uint64_t rejected_admission = 0;  // refused at the max_connections cap
    uint64_t recovered = 0;           // parked sessions reattached
    uint64_t closed = 0;              // connections reaped
    uint64_t expired_parked = 0;      // parked sessions dropped (timeout)
    uint64_t send_queue_rejections = 0;  // Sends over the queue cap
    uint64_t tampered = 0;            // connections killed: hostile framing
    // Admission outcomes (typed, outside the leakage score).
    uint64_t admitted = 0;                   // attestation verified
    uint64_t rejected_unauthenticated = 0;   // missing/forged/stale report
    // Live migration.
    uint64_t migrated_out = 0;  // sessions exported to another instance
    uint64_t migrated_in = 0;   // sealed sessions imported and parked
  };
  const Stats& stats() const { return stats_; }
  const ServerConfig& config() const { return config_; }

  size_t active_connections() const { return connections_.size(); }
  size_t parked_sessions() const { return parked_.size(); }
  // True while the server still holds state for `peer` — a live table
  // entry or a parked session. Churn drivers wait for this to clear
  // between an orderly close and the next connect from the same address,
  // so a fresh connection can never reattach a half-torn-down session.
  bool ServesPeer(cionet::Ipv4Address peer) const;
  ciobase::Result<ConnState> StateOf(ConnId conn) const;
  // Established connection ids, for tests/benchmarks.
  std::vector<ConnId> EstablishedConnections() const;
  // The connection's live session (null when unknown/closed) — introspection
  // for tests/benchmarks (ratchet generations, stats).
  const cio::Session* SessionOf(ConnId conn) const;
  cio::ConfidentialNode* node() { return node_; }

 private:
  struct Connection {
    ConnId id = 0;
    cionet::SocketId socket{};
    cionet::Ipv4Address peer{};
    ConnState state = ConnState::kHandshaking;
    // The per-connection secure channel; a unique_ptr so it can be parked
    // across a transport fault and reattached on reconnect.
    std::unique_ptr<cio::Session> session;
    size_t drr_deficit = 0;     // unused transport credit (DRR)
    uint64_t opened_ns = 0;
    bool reattached = false;    // carries a recovered session
    ciobase::Buffer challenge;  // admission nonce (kAttesting only)
  };

  struct ParkedSession {
    std::unique_ptr<cio::Session> session;
    uint64_t parked_ns = 0;
    // The faulted connection's id: the reattached connection keeps it, so
    // the application's handle stays valid across the fault.
    ConnId id = 0;
  };

  void AcceptPending();
  // The transport under `conn` died: park its Session for reattach and
  // drop the connection from the table.
  void ParkConnection(Connection& conn);
  // Orderly teardown: FIN, then release every L5 resource (pool slots,
  // armed recv entries, held completions) the socket still pins.
  void CloseAndRelease(Connection& conn);
  // Moves inbound bytes into and outbound bytes out of the Session, within
  // this round's budgets. Returns false when the connection died.
  bool PumpConnection(Connection& conn);
  // Channel up (and, when gated, attested): established + reattach replay.
  void Admit(Connection& conn);
  // Checks a client's attestation report against the expected measurement
  // and this connection's {challenge, transcript}-bound nonce.
  ciobase::Status VerifyReport(const Connection& conn,
                               ciobase::ByteSpan report_bytes) const;
  // kAttesting: consume the client's report and admit or deny.
  void PumpAdmission(Connection& conn);
  void FlushOutbound();  // DRR pass over connections with queued output
  void Reap();           // drop kClosed connections, expire parked sessions
  void UpdateGauges();   // active-connection gauge in the counter set

  cio::ConfidentialNode* node_;
  cio::SocketLayer* sockets_;
  ciobase::SimClock* clock_;
  ServerConfig config_;

  bool listening_ = false;
  cionet::SocketId listener_{};
  ConnId next_conn_id_ = 1;
  // Poll/flush iterate in id order, which doubles as round-robin order;
  // DRR deficits make the shares fair regardless of iteration order.
  std::map<ConnId, Connection> connections_;
  // Faulted connections' sessions awaiting the client's reconnect, keyed
  // by peer address (the engine reconnects from the same simulated IP).
  std::map<uint32_t, ParkedSession> parked_;
  std::deque<Incoming> inbox_;
  ciobase::Buffer rx_scratch_;  // reusable inbound staging chunk
  Stats stats_;

  // Attestation-gated admission (config_.require_attestation).
  ciobase::Rng rng_;  // challenge nonces
  std::unique_ptr<ciotee::AttestationAuthority> authority_;
  ciotee::Measurement expected_measurement_{};
};

}  // namespace cioserve

#endif  // SRC_SERVE_SERVER_H_
