// SessionVault: seals serialized cio::Session blobs for cross-instance
// migration, bound to a ciotee::MonotonicCounter for rollback protection.
//
// A migrating session is long-lived guest state crossing the untrusted host
// (via the confidential storage path), so it gets the same treatment as the
// blockio generation tables (PR 3): sealed, versioned, and freshness-bound.
//
// Sealed format (little-endian):
//   magic u32 'CSV1'
//   epoch u64            — counter value this export bumped to
//   ciphertext || tag    — AEAD over the session blob
// AAD covers magic+epoch; the nonce is derived from the epoch, which is
// unique per seal because the counter only moves forward.
//
// Open() enforces three properties, all failing as typed kTampered:
//   * integrity  — any bit flip or truncation fails the AEAD tag;
//   * freshness  — the epoch must be one this vault issued and not beyond
//                  the counter (a blob "from the future" is forged);
//   * single use — a successful Open retires the epoch, so a host replaying
//                  an already-imported blob (or restoring the fleet to a
//                  pre-migration snapshot and re-presenting the old export)
//                  is rejected instead of resurrecting stale sequence state.
//
// The vault models a fleet-shared sealing key + counter service: in a real
// deployment both sides derive it from attestation; here the bench/test
// constructs one vault and hands it to every instance.

#ifndef SRC_SERVE_SESSION_VAULT_H_
#define SRC_SERVE_SESSION_VAULT_H_

#include <set>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/tee/monotonic_counter.h"

namespace cioserve {

class SessionVault {
 public:
  // `counter` must outlive the vault (the instance's anti-rollback root).
  SessionVault(ciobase::ByteSpan vault_key, ciotee::MonotonicCounter* counter);

  // Seals a session blob under a fresh epoch (bumps the counter).
  ciobase::Buffer Seal(ciobase::ByteSpan blob);

  // Unseals; kTampered on integrity/freshness/replay violations.
  ciobase::Result<ciobase::Buffer> Open(ciobase::ByteSpan sealed);

  struct Stats {
    uint64_t sealed = 0;
    uint64_t opened = 0;
    uint64_t rejected = 0;  // tampered / rolled back / replayed
  };
  const Stats& stats() const { return stats_; }
  size_t live_epochs() const { return live_epochs_.size(); }

 private:
  ciobase::Buffer key_;
  ciotee::MonotonicCounter* counter_;
  std::set<uint64_t> live_epochs_;  // issued, not yet consumed
  Stats stats_;
};

}  // namespace cioserve

#endif  // SRC_SERVE_SESSION_VAULT_H_
