// MultiClientWorld: one ConfidentialServer plus N single-socket client
// engines on one simulated fabric — the shared fixture for the server tests
// and the open-loop load benchmark.
//
// The server node and every client node assemble the SAME StackProfile, so
// a load point exercises the full profile-specific datapath on both sides
// (e.g. 64 dual-boundary clients all crossing their own L5 boundaries into
// one dual-boundary server). All nodes share one attestation-bound PSK;
// seeds are derived per node so TLS nonces never collide.

#ifndef SRC_SERVE_HARNESS_H_
#define SRC_SERVE_HARNESS_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/serve/server.h"

namespace cioserve {

struct MultiClientWorld {
  struct Options {
    cio::StackProfile profile = cio::StackProfile::kDualBoundary;
    size_t num_clients = 8;
    ServerConfig server_config;
    uint64_t seed = 4242;
    // Shrinks TCP RTOs (and keeps the profile's default recovery config)
    // so fault windows of a few simulated milliseconds produce connection
    // death + reconnect instead of a silent multi-second retransmit stall.
    bool fast_tcp = true;
    cionet::Fabric::Options fabric_options{};

    // Attestation-gated admission: when non-empty, every server requires a
    // transcript-bound report under this key and every client is
    // provisioned with it — except the probe clients below, which MUST be
    // rejected as typed kUnauthenticated (the negative arms).
    ciobase::Buffer attestation_key;
    std::vector<size_t> forged_clients;   // wrong signing key
    std::vector<size_t> stale_clients;    // report over a stale nonce
    std::vector<size_t> keyless_clients;  // no report at all

    // Second server instance (node id 2 + num_clients, same port) — the
    // migration target for MigrateSession/ImportSession arms.
    bool second_server = false;

    // In-band rekey thresholds, applied to every node's StackConfig
    // (0 = never; see StackConfig::rekey_after_records/bytes).
    uint64_t rekey_after_records = 0;
    uint64_t rekey_after_bytes = 0;

    // In-sim profiler attached to the FIRST server node (src/prof). One
    // registry binds to one node's clock+cost model; the load benchmark
    // profiles the server side, where the interesting contention lives.
    cioprof::ProfRegistry* server_profiler = nullptr;
  };

  ciobase::SimClock clock;
  std::unique_ptr<cionet::Fabric> fabric;
  std::unique_ptr<cio::ConfidentialNode> server_node;
  std::unique_ptr<ConfidentialServer> server;
  // Present only with Options::second_server.
  std::unique_ptr<cio::ConfidentialNode> server2_node;
  std::unique_ptr<ConfidentialServer> server2;
  std::vector<std::unique_ptr<cio::ConfidentialNode>> clients;

  explicit MultiClientWorld(const Options& options);

  // One simulation round: every server Poll, every client Poll, clock step.
  void Pump(uint64_t step_ns = 10'000);
  bool PumpUntil(const std::function<bool()>& done, int max_rounds = 60000,
                 uint64_t step_ns = 10'000);

  // Connects every client and pumps until every non-probe client is
  // Ready() (and admitted, when attestation is gated) and the first server
  // has an established connection for each; probe clients must settle as
  // denied. Starts the second server too when present.
  bool EstablishAll(int max_rounds = 60000);

  // Echo application on every server: every inbound message goes straight
  // back on its connection. Echoes that cannot go out yet (backpressure,
  // connection mid-recovery) stay queued and are retried each call, so a
  // transport fault delays an echo but never drops it. Returns messages
  // echoed this round.
  size_t EchoRound();
  size_t pending_echoes() const { return echo_queue_.size(); }

 private:
  struct PendingEcho {
    ConfidentialServer* srv;
    Incoming incoming;
  };
  bool attestation_gated_ = false;
  std::deque<PendingEcho> echo_queue_;
};

}  // namespace cioserve

#endif  // SRC_SERVE_HARNESS_H_
