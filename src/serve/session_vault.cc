#include "src/serve/session_vault.h"

#include "src/crypto/aead.h"

namespace cioserve {

namespace {

constexpr uint32_t kVaultMagic = 0x31565343;  // "CSV1"
constexpr size_t kHeaderSize = 4 + 8;         // magic + epoch

ciobase::Buffer EpochNonce(uint64_t epoch) {
  ciobase::Buffer nonce(ciocrypto::kAeadNonceSize, 0);
  ciobase::StoreLe64(nonce.data(), epoch);
  nonce[8] = 's';
  nonce[9] = 'v';
  return nonce;
}

}  // namespace

SessionVault::SessionVault(ciobase::ByteSpan vault_key,
                           ciotee::MonotonicCounter* counter)
    : key_(ciocrypto::DeriveAeadKey(vault_key)), counter_(counter) {}

ciobase::Buffer SessionVault::Seal(ciobase::ByteSpan blob) {
  uint64_t epoch = counter_->value() + 1;
  counter_->BumpTo(epoch);
  live_epochs_.insert(epoch);

  ciobase::Buffer out(kHeaderSize);
  ciobase::StoreLe32(out.data(), kVaultMagic);
  ciobase::StoreLe64(out.data() + 4, epoch);
  ciobase::Buffer aad(out.begin(), out.end());
  ciocrypto::AeadSealInto(key_, EpochNonce(epoch), aad, blob, out);
  ++stats_.sealed;
  return out;
}

ciobase::Result<ciobase::Buffer> SessionVault::Open(ciobase::ByteSpan sealed) {
  ++stats_.rejected;  // undone on success
  if (sealed.size() < kHeaderSize + ciocrypto::kAeadTagSize) {
    return ciobase::Tampered("session seal truncated");
  }
  if (ciobase::LoadLe32(sealed.data()) != kVaultMagic) {
    return ciobase::Tampered("session seal: bad magic");
  }
  uint64_t epoch = ciobase::LoadLe64(sealed.data() + 4);
  if (epoch > counter_->value()) {
    return ciobase::Tampered("session seal from the future");
  }
  if (live_epochs_.find(epoch) == live_epochs_.end()) {
    // Either never issued by this vault, already consumed (replay), or the
    // export was superseded — all of which smell like the host rolling the
    // session back to an old snapshot.
    return ciobase::Tampered("session seal rolled back or replayed");
  }
  ciobase::ByteSpan aad = sealed.subspan(0, kHeaderSize);
  auto opened = ciocrypto::AeadOpen(key_, EpochNonce(epoch), aad,
                                    sealed.subspan(kHeaderSize));
  if (!opened.ok()) {
    return ciobase::Tampered("session seal integrity failure");
  }
  live_epochs_.erase(epoch);  // single use: a second import is a replay
  --stats_.rejected;
  ++stats_.opened;
  return opened;
}

}  // namespace cioserve
