// Simulated TEE physical memory with domain-based access policing.
//
// This stands in for the hardware isolation of SEV-SNP/TDX/SGX (see
// DESIGN.md, substitutions table). Memory is split into regions, each tagged
// with a domain:
//
//   kGuestPrivate — encrypted guest memory. The guest reads/writes plaintext.
//                   A host *read* returns deterministically scrambled bytes
//                   (what ciphertext looks like to the hypervisor); a host
//                   *write* is blocked and recorded as a violation (RMP
//                   semantics).
//   kShared       — bounce/shared memory both sides can access. This is the
//                   only place trust boundaries exchange data, and the only
//                   place the adversary can tamper.
//   kHostOnly     — host-private memory the guest must never touch.
//
// Every access is bounds-checked against its region. Out-of-range accesses
// never corrupt the simulation: they are clamped, serviced with scrambled
// bytes (reads) or dropped (writes), and recorded in the ViolationLog. The
// attack-campaign harness uses the ViolationLog as its ground truth for
// "this design performed an unsafe access under attack".

#ifndef SRC_TEE_MEMORY_H_
#define SRC_TEE_MEMORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace ciotee {

enum class Domain {
  kGuest,  // code running inside the TEE
  kHost,   // the untrusted hypervisor / host software
};

enum class RegionKind {
  kGuestPrivate,
  kShared,
  kHostOnly,
};

std::string_view RegionKindName(RegionKind kind);

enum class ViolationKind {
  kOobRead,        // access past the end of a region
  kOobWrite,
  kPrivateWrite,   // host wrote to encrypted guest memory
  kPrivateRead,    // host read encrypted guest memory (sees ciphertext)
  kHostOnlyAccess, // guest touched host-private memory
};

std::string_view ViolationKindName(ViolationKind kind);

struct ViolationEvent {
  ViolationKind kind;
  Domain actor;
  uint32_t region_id;
  uint64_t offset;
  uint64_t length;
  std::string note;
};

// Handle to a region; cheap to copy.
struct RegionId {
  uint32_t value = 0;
  bool operator==(const RegionId&) const = default;
};

class TeeMemory {
 public:
  TeeMemory() = default;

  // Non-copyable: regions hand out stable ids into this object.
  TeeMemory(const TeeMemory&) = delete;
  TeeMemory& operator=(const TeeMemory&) = delete;

  RegionId AddRegion(RegionKind kind, size_t size, std::string name);

  size_t RegionSize(RegionId id) const;
  RegionKind Kind(RegionId id) const;
  const std::string& RegionName(RegionId id) const;

  // Policed accessors. Reads fill `out` completely: in-bounds bytes come from
  // the region (or its scrambled image if policy denies plaintext), the
  // out-of-bounds remainder is scrambled filler. The returned status reports
  // whether the access was clean.
  ciobase::Status Read(Domain actor, RegionId id, uint64_t offset,
                       ciobase::MutableByteSpan out);
  ciobase::Status Write(Domain actor, RegionId id, uint64_t offset,
                        ciobase::ByteSpan data);

  // Direct span for in-bounds, policy-allowed access. Used on hot paths
  // (ring polling) after construction-time validation; never spans regions.
  // Returns an empty span and records a violation if the window is invalid.
  ciobase::MutableByteSpan RawWindow(Domain actor, RegionId id,
                                     uint64_t offset, uint64_t length);

  const std::vector<ViolationEvent>& violations() const { return violations_; }
  size_t ViolationCount(ViolationKind kind) const;
  void ClearViolations() { violations_.clear(); }

 private:
  struct Region {
    RegionKind kind;
    std::string name;
    ciobase::Buffer data;
  };

  bool AllowPlaintext(Domain actor, RegionKind kind) const;
  bool AllowWrite(Domain actor, RegionKind kind) const;
  void RecordViolation(ViolationKind kind, Domain actor, uint32_t region,
                       uint64_t offset, uint64_t length, std::string note);
  // Deterministic "ciphertext" for a byte the actor may not see.
  uint8_t ScrambleByte(uint32_t region, uint64_t offset) const;

  std::vector<Region> regions_;
  std::vector<ViolationEvent> violations_;
};

}  // namespace ciotee

#endif  // SRC_TEE_MEMORY_H_
