#include "src/tee/shared_region.h"

// SharedRegion is header-only today; see shared_region.h.

namespace ciotee {}  // namespace ciotee
