#include "src/tee/compartment.h"

#include <cassert>

#include "src/base/bits.h"

namespace ciotee {

CompartmentId CompartmentManager::Create(std::string name, size_t heap_bytes) {
  Compartment c;
  c.name = std::move(name);
  c.heap.resize(heap_bytes);
  compartments_.push_back(std::move(c));
  return CompartmentId{static_cast<uint32_t>(compartments_.size() - 1)};
}

const std::string& CompartmentManager::Name(CompartmentId id) const {
  assert(id.value < compartments_.size());
  return compartments_[id.value].name;
}

void CompartmentManager::GrantAccess(CompartmentId accessor,
                                     CompartmentId owner) {
  grants_.emplace_back(accessor.value, owner.value);
}

bool CompartmentManager::HasGrant(CompartmentId accessor,
                                  CompartmentId owner) const {
  if (accessor == owner) {
    return true;
  }
  for (const auto& [a, o] : grants_) {
    if (a == accessor.value && o == owner.value) {
      return true;
    }
  }
  return false;
}

ciobase::Result<BufferHandle> CompartmentManager::Allocate(
    CompartmentId requester, CompartmentId owner, size_t bytes) {
  if (owner.value >= compartments_.size()) {
    return ciobase::InvalidArgument("bad compartment id");
  }
  if (!HasGrant(requester, owner)) {
    violations_.push_back({requester, owner, "allocate without grant"});
    return ciobase::PermissionDenied("allocate without grant");
  }
  Compartment& c = compartments_[owner.value];
  uint64_t aligned = ciobase::AlignUp(bytes == 0 ? 1 : bytes, 16);
  if (c.bump + aligned > c.heap.size()) {
    return ciobase::ResourceExhausted("compartment heap exhausted: " + c.name);
  }
  uint32_t slot;
  if (!c.free_slots.empty()) {
    slot = c.free_slots.back();
    c.free_slots.pop_back();
  } else {
    slot = static_cast<uint32_t>(c.slots.size());
    c.slots.push_back({});
  }
  Allocation& alloc = c.slots[slot];
  alloc.offset = c.bump;
  alloc.size = bytes;
  alloc.live = true;
  alloc.access_owner = owner.value;
  ++alloc.generation;
  c.bump += aligned;
  ++c.live_allocations;
  return BufferHandle{owner, slot, alloc.generation, bytes};
}

ciobase::Status CompartmentManager::Free(CompartmentId requester,
                                         BufferHandle handle) {
  if (handle.owner.value >= compartments_.size()) {
    return ciobase::InvalidArgument("bad compartment id");
  }
  if (!HasGrant(requester, handle.owner)) {
    violations_.push_back({requester, handle.owner, "free without grant"});
    return ciobase::PermissionDenied("free without grant");
  }
  Compartment& c = compartments_[handle.owner.value];
  if (handle.slot >= c.slots.size() ||
      c.slots[handle.slot].generation != handle.generation ||
      !c.slots[handle.slot].live) {
    violations_.push_back({requester, handle.owner, "stale free"});
    return ciobase::FailedPrecondition("stale or double free");
  }
  c.slots[handle.slot].live = false;
  c.free_slots.push_back(handle.slot);
  if (--c.live_allocations == 0) {
    c.bump = 0;  // heap is empty: rewind (see Compartment comment)
  }
  return ciobase::OkStatus();
}

ciobase::Result<ciobase::MutableByteSpan> CompartmentManager::Access(
    CompartmentId accessor, BufferHandle handle) {
  if (handle.owner.value >= compartments_.size()) {
    return ciobase::InvalidArgument("bad compartment id");
  }
  Compartment& c = compartments_[handle.owner.value];
  if (handle.slot >= c.slots.size()) {
    violations_.push_back({accessor, handle.owner, "forged handle slot"});
    return ciobase::InvalidArgument("forged handle");
  }
  Allocation& alloc = c.slots[handle.slot];
  if (!alloc.live || alloc.generation != handle.generation) {
    violations_.push_back({accessor, handle.owner, "stale handle (UAF)"});
    return ciobase::FailedPrecondition("stale handle");
  }
  // Access is governed by the *current* owner — the heap compartment
  // normally, someone else after a Transfer (L5 revocation).
  CompartmentId owner{alloc.access_owner};
  if (!HasGrant(accessor, owner)) {
    violations_.push_back(
        {accessor, owner, "access without grant (isolation held)"});
    return ciobase::PermissionDenied("no grant from " +
                                     compartments_[owner.value].name);
  }
  if (handle.size > alloc.size) {
    violations_.push_back({accessor, owner, "handle size forgery"});
    return ciobase::OutOfRange("handle larger than allocation");
  }
  return ciobase::MutableByteSpan(c.heap.data() + alloc.offset, alloc.size);
}

ciobase::Status CompartmentManager::Transfer(CompartmentId requester,
                                             BufferHandle handle,
                                             CompartmentId new_owner) {
  if (handle.owner.value >= compartments_.size() ||
      new_owner.value >= compartments_.size()) {
    return ciobase::InvalidArgument("bad compartment id");
  }
  Compartment& c = compartments_[handle.owner.value];
  if (handle.slot >= c.slots.size()) {
    return ciobase::InvalidArgument("forged handle");
  }
  Allocation& alloc = c.slots[handle.slot];
  if (!alloc.live || alloc.generation != handle.generation) {
    return ciobase::FailedPrecondition("stale handle");
  }
  if (!HasGrant(requester, CompartmentId{alloc.access_owner})) {
    violations_.push_back({requester, CompartmentId{alloc.access_owner},
                           "transfer without grant"});
    return ciobase::PermissionDenied("transfer without grant");
  }
  alloc.access_owner = new_owner.value;
  return ciobase::OkStatus();
}

void CompartmentManager::SwitchTo(CompartmentId id) {
  assert(id.value < compartments_.size());
  if (id == current_) {
    return;
  }
  current_ = id;
  ++switch_count_;
  costs_->ChargeCompartmentSwitch();
}

}  // namespace ciotee
