// The trust models of §2.1 and §3.1.
//
// Actors: the confidential application, the I/O stack, the host software
// (hypervisor/OS), and the device. A TrustModel is a directed "A trusts B"
// relation. The paper contrasts:
//
//   Binary (classic confidential computing): {app, I/O stack} form one
//   trusted unit that distrusts {host, device}. Compromise of the I/O stack
//   IS compromise of the application.
//
//   Ternary (this work, §3.1): the app additionally distrusts the I/O stack,
//   while the I/O stack still trusts the app (single distrust at L5).
//   Compromising the I/O stack only increases observability; reaching the
//   app requires a multi-stage attack across the L5 boundary.
//
//   DDA (§3.4): after SPDM attestation, the device joins the trusted set.

#ifndef SRC_TEE_TRUST_H_
#define SRC_TEE_TRUST_H_

#include <array>
#include <string>

namespace ciotee {

enum class Actor : uint8_t {
  kApp = 0,      // confidential application (+ framework core)
  kIoStack = 1,  // TCP/IP stack and L2 driver
  kHostSw = 2,   // hypervisor / host OS
  kDevice = 3,   // NIC / disk hardware
};
inline constexpr int kActorCount = 4;

std::string_view ActorName(Actor actor);

class TrustModel {
 public:
  // No one trusts anyone by default; every actor trusts itself.
  TrustModel();

  void SetTrusts(Actor subject, Actor object, bool trusts);
  bool Trusts(Actor subject, Actor object) const;

  // True if data from `from` must be treated as adversarial by `to` — i.e. a
  // distrust boundary is crossed and the interface needs hardening.
  bool BoundaryRequired(Actor from, Actor to) const {
    return !Trusts(to, from);
  }

  // True if the pair needs *mutual* distrust handling (both directions
  // hardened), e.g. guest/host; false for the paper's single-distrust L5
  // boundary where the I/O stack trusts the app.
  bool MutualDistrust(Actor a, Actor b) const {
    return !Trusts(a, b) && !Trusts(b, a);
  }

  std::string Describe() const;

  // Classic confidential computing: app and I/O stack are one trusted unit.
  static TrustModel Binary();
  // The paper's ternary/nested model (§3.1).
  static TrustModel Ternary();
  // Ternary plus an SPDM-attested device added to the TCB (§3.4).
  static TrustModel TernaryWithAttestedDevice();
  // Classic binary model plus an SPDM-attested device (DDA without
  // compartmentalization: the stack stays in the app's domain).
  static TrustModel BinaryWithAttestedDevice();

 private:
  // matrix_[subject][object]
  std::array<std::array<bool, kActorCount>, kActorCount> matrix_;
};

}  // namespace ciotee

#endif  // SRC_TEE_TRUST_H_
