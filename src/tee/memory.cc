#include "src/tee/memory.h"

#include <cassert>

#include "src/base/log.h"

namespace ciotee {

std::string_view RegionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::kGuestPrivate:
      return "guest-private";
    case RegionKind::kShared:
      return "shared";
    case RegionKind::kHostOnly:
      return "host-only";
  }
  return "?";
}

std::string_view ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOobRead:
      return "oob-read";
    case ViolationKind::kOobWrite:
      return "oob-write";
    case ViolationKind::kPrivateWrite:
      return "private-write";
    case ViolationKind::kPrivateRead:
      return "private-read";
    case ViolationKind::kHostOnlyAccess:
      return "host-only-access";
  }
  return "?";
}

RegionId TeeMemory::AddRegion(RegionKind kind, size_t size, std::string name) {
  regions_.push_back(Region{kind, std::move(name), ciobase::Buffer(size, 0)});
  return RegionId{static_cast<uint32_t>(regions_.size() - 1)};
}

size_t TeeMemory::RegionSize(RegionId id) const {
  assert(id.value < regions_.size());
  return regions_[id.value].data.size();
}

RegionKind TeeMemory::Kind(RegionId id) const {
  assert(id.value < regions_.size());
  return regions_[id.value].kind;
}

const std::string& TeeMemory::RegionName(RegionId id) const {
  assert(id.value < regions_.size());
  return regions_[id.value].name;
}

bool TeeMemory::AllowPlaintext(Domain actor, RegionKind kind) const {
  switch (kind) {
    case RegionKind::kGuestPrivate:
      return actor == Domain::kGuest;
    case RegionKind::kShared:
      return true;
    case RegionKind::kHostOnly:
      return actor == Domain::kHost;
  }
  return false;
}

bool TeeMemory::AllowWrite(Domain actor, RegionKind kind) const {
  // Same policy as plaintext reads: only the owner of private memory may
  // write it; shared memory is writable by both.
  return AllowPlaintext(actor, kind);
}

void TeeMemory::RecordViolation(ViolationKind kind, Domain actor,
                                uint32_t region, uint64_t offset,
                                uint64_t length, std::string note) {
  CIO_LOG(kDebug) << "violation " << ViolationKindName(kind) << " region="
                  << regions_[region].name << " off=" << offset
                  << " len=" << length << " " << note;
  violations_.push_back(
      ViolationEvent{kind, actor, region, offset, length, std::move(note)});
}

uint8_t TeeMemory::ScrambleByte(uint32_t region, uint64_t offset) const {
  // Cheap deterministic mix — models that the actor sees high-entropy bytes
  // unrelated to the plaintext.
  uint64_t x = offset * 0x9e3779b97f4a7c15ULL ^
               (static_cast<uint64_t>(region) + 1) * 0xd1342543de82ef95ULL;
  x ^= x >> 29;
  return static_cast<uint8_t>(x * 0xff51afd7ed558ccdULL >> 56);
}

ciobase::Status TeeMemory::Read(Domain actor, RegionId id, uint64_t offset,
                                ciobase::MutableByteSpan out) {
  assert(id.value < regions_.size());
  Region& region = regions_[id.value];
  ciobase::Status status = ciobase::OkStatus();

  bool plaintext = AllowPlaintext(actor, region.kind);
  if (!plaintext) {
    if (region.kind == RegionKind::kGuestPrivate) {
      RecordViolation(ViolationKind::kPrivateRead, actor, id.value, offset,
                      out.size(), "host read of encrypted memory");
      status = ciobase::PermissionDenied("ciphertext only");
    } else {
      RecordViolation(ViolationKind::kHostOnlyAccess, actor, id.value, offset,
                      out.size(), "guest read of host-only memory");
      status = ciobase::PermissionDenied("host-only region");
    }
  }

  // Overflow-safe bounds arithmetic: a hostile offset may wrap uint64.
  uint64_t region_size = region.data.size();
  uint64_t in_bounds =
      offset >= region_size ? 0
                            : std::min<uint64_t>(out.size(),
                                                 region_size - offset);
  for (size_t i = 0; i < out.size(); ++i) {
    if (i < in_bounds && plaintext) {
      out[i] = region.data[offset + i];
    } else {
      out[i] = ScrambleByte(id.value, offset + i);
    }
  }
  if (in_bounds < out.size()) {
    RecordViolation(ViolationKind::kOobRead, actor, id.value, offset,
                    out.size(), "read past region end");
    if (status.ok()) {
      status = ciobase::OutOfRange("read past region end");
    }
  }
  return status;
}

ciobase::Status TeeMemory::Write(Domain actor, RegionId id, uint64_t offset,
                                 ciobase::ByteSpan data) {
  assert(id.value < regions_.size());
  Region& region = regions_[id.value];

  if (!AllowWrite(actor, region.kind)) {
    if (region.kind == RegionKind::kGuestPrivate) {
      RecordViolation(ViolationKind::kPrivateWrite, actor, id.value, offset,
                      data.size(), "host write to encrypted memory");
    } else {
      RecordViolation(ViolationKind::kHostOnlyAccess, actor, id.value, offset,
                      data.size(), "guest write to host-only memory");
    }
    return ciobase::PermissionDenied("write denied by domain policy");
  }

  uint64_t region_size = region.data.size();
  uint64_t in_bounds =
      offset >= region_size ? 0
                            : std::min<uint64_t>(data.size(),
                                                 region_size - offset);
  for (size_t i = 0; i < in_bounds; ++i) {
    region.data[offset + i] = data[i];  // the rest is dropped
  }
  if (in_bounds < data.size()) {
    RecordViolation(ViolationKind::kOobWrite, actor, id.value, offset,
                    data.size(), "write past region end");
    return ciobase::OutOfRange("write past region end");
  }
  return ciobase::OkStatus();
}

ciobase::MutableByteSpan TeeMemory::RawWindow(Domain actor, RegionId id,
                                              uint64_t offset,
                                              uint64_t length) {
  assert(id.value < regions_.size());
  Region& region = regions_[id.value];
  if (!AllowPlaintext(actor, region.kind)) {
    RecordViolation(region.kind == RegionKind::kGuestPrivate
                        ? ViolationKind::kPrivateRead
                        : ViolationKind::kHostOnlyAccess,
                    actor, id.value, offset, length, "raw window denied");
    return {};
  }
  if (offset + length > region.data.size() || offset + length < offset) {
    RecordViolation(ViolationKind::kOobRead, actor, id.value, offset, length,
                    "raw window out of range");
    return {};
  }
  return ciobase::MutableByteSpan(region.data.data() + offset, length);
}

size_t TeeMemory::ViolationCount(ViolationKind kind) const {
  size_t n = 0;
  for (const auto& v : violations_) {
    if (v.kind == kind) {
      ++n;
    }
  }
  return n;
}

}  // namespace ciotee
