#include "src/tee/attestation.h"

#include <cstring>

#include "src/crypto/hmac.h"

namespace ciotee {

Measurement Measure(std::string_view code_identity, ciobase::ByteSpan config) {
  ciocrypto::Sha256 h;
  h.Update(ciobase::ByteSpan(
      reinterpret_cast<const uint8_t*>(code_identity.data()),
      code_identity.size()));
  uint8_t sep = 0;
  h.Update(ciobase::ByteSpan(&sep, 1));
  h.Update(config);
  return h.Finish();
}

ciobase::Buffer BindNonce(ciobase::ByteSpan challenge,
                          const ciocrypto::Sha256Digest& transcript_hash) {
  ciocrypto::Sha256 h;
  h.Update(challenge);
  h.Update(transcript_hash);
  ciocrypto::Sha256Digest bound = h.Finish();
  return ciobase::Buffer(bound.begin(), bound.end());
}

ciobase::Buffer AttestationReport::Serialize() const {
  ciobase::Buffer out;
  ciobase::Append(out, measurement);
  out.push_back(static_cast<uint8_t>(nonce.size()));
  ciobase::Append(out, nonce);
  ciobase::Append(out, mac);
  return out;
}

ciobase::Result<AttestationReport> AttestationReport::Parse(
    ciobase::ByteSpan data) {
  constexpr size_t kFixed = ciocrypto::kSha256DigestSize + 1 +
                            ciocrypto::kSha256DigestSize;
  if (data.size() < kFixed) {
    return ciobase::InvalidArgument("attestation report truncated");
  }
  AttestationReport report;
  std::memcpy(report.measurement.data(), data.data(),
              report.measurement.size());
  size_t nonce_len = data[report.measurement.size()];
  size_t expected = kFixed + nonce_len;
  if (data.size() != expected) {
    return ciobase::InvalidArgument("attestation report length mismatch");
  }
  const uint8_t* nonce_start = data.data() + report.measurement.size() + 1;
  report.nonce.assign(nonce_start, nonce_start + nonce_len);
  std::memcpy(report.mac.data(), nonce_start + nonce_len, report.mac.size());
  return report;
}

ciocrypto::Sha256Digest AttestationAuthority::ReportMac(
    const Measurement& measurement, ciobase::ByteSpan nonce) const {
  ciocrypto::HmacSha256 mac(platform_key_);
  mac.Update(measurement);
  mac.Update(nonce);
  return mac.Finish();
}

AttestationReport AttestationAuthority::Issue(const Measurement& measurement,
                                              ciobase::ByteSpan nonce) const {
  AttestationReport report;
  report.measurement = measurement;
  report.nonce.assign(nonce.begin(), nonce.end());
  report.mac = ReportMac(measurement, nonce);
  return report;
}

ciobase::Status AttestationAuthority::Verify(
    const AttestationReport& report, const Measurement& expected,
    ciobase::ByteSpan expected_nonce) const {
  ciocrypto::Sha256Digest mac = ReportMac(report.measurement, report.nonce);
  if (!ciobase::ConstantTimeEqual(mac, report.mac)) {
    return ciobase::Tampered("attestation MAC invalid");
  }
  if (!ciobase::ConstantTimeEqual(report.nonce, expected_nonce)) {
    return ciobase::Tampered("attestation nonce stale (replay)");
  }
  if (!ciobase::ConstantTimeEqual(report.measurement, expected)) {
    return ciobase::Tampered("unexpected measurement");
  }
  return ciobase::OkStatus();
}

}  // namespace ciotee
