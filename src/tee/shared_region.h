// SharedRegion: the host/TEE shared-memory window, with an explicit TOCTOU
// surface.
//
// Both virtqueue-style transports and the paper's hardened ring live inside a
// SharedRegion. The crucial property of real shared memory is that the host
// can mutate it *between any two guest accesses* — this is what makes double
// fetches exploitable. We model that exactly: a tamper hook (installed by the
// hostsim adversary) runs before every guest-side access, so a guest that
// reads the same field twice can legitimately observe two different values,
// while a guest that copies the field once into private memory (the paper's
// "copy as a first-class citizen" principle) cannot be flipped after
// validation.

#ifndef SRC_TEE_SHARED_REGION_H_
#define SRC_TEE_SHARED_REGION_H_

#include <functional>
#include <utility>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/tee/memory.h"

namespace ciotee {

class SharedRegion {
 public:
  // The hook receives the raw shared bytes and may mutate them arbitrarily,
  // exactly like a concurrently running hostile hypervisor core.
  using TamperHook = std::function<void(ciobase::MutableByteSpan)>;

  SharedRegion(TeeMemory* memory, size_t size, std::string name)
      : memory_(memory),
        id_(memory->AddRegion(RegionKind::kShared, size, std::move(name))) {}

  RegionId id() const { return id_; }
  size_t size() const { return memory_->RegionSize(id_); }
  TeeMemory* memory() const { return memory_; }

  void SetTamperHook(TamperHook hook) { tamper_hook_ = std::move(hook); }
  void ClearTamperHook() { tamper_hook_ = nullptr; }

  // --- Guest-side access (every call opens a TOCTOU window first) ---------

  ciobase::Status GuestRead(uint64_t offset, ciobase::MutableByteSpan out) {
    RunTamperHook();
    return memory_->Read(Domain::kGuest, id_, offset, out);
  }
  ciobase::Status GuestWrite(uint64_t offset, ciobase::ByteSpan data) {
    RunTamperHook();
    return memory_->Write(Domain::kGuest, id_, offset, data);
  }
  uint8_t GuestReadU8(uint64_t offset) {
    uint8_t v = 0;
    GuestRead(offset, ciobase::MutableByteSpan(&v, 1));
    return v;
  }
  uint16_t GuestReadLe16(uint64_t offset) {
    uint8_t raw[2] = {0, 0};
    GuestRead(offset, raw);
    return ciobase::LoadLe16(raw);
  }
  uint32_t GuestReadLe32(uint64_t offset) {
    uint8_t raw[4] = {0, 0, 0, 0};
    GuestRead(offset, raw);
    return ciobase::LoadLe32(raw);
  }
  uint64_t GuestReadLe64(uint64_t offset) {
    uint8_t raw[8] = {0};
    GuestRead(offset, raw);
    return ciobase::LoadLe64(raw);
  }
  void GuestWriteU8(uint64_t offset, uint8_t v) {
    GuestWrite(offset, ciobase::ByteSpan(&v, 1));
  }
  void GuestWriteLe16(uint64_t offset, uint16_t v) {
    uint8_t raw[2];
    ciobase::StoreLe16(raw, v);
    GuestWrite(offset, raw);
  }
  void GuestWriteLe32(uint64_t offset, uint32_t v) {
    uint8_t raw[4];
    ciobase::StoreLe32(raw, v);
    GuestWrite(offset, raw);
  }
  void GuestWriteLe64(uint64_t offset, uint64_t v) {
    uint8_t raw[8];
    ciobase::StoreLe64(raw, v);
    GuestWrite(offset, raw);
  }

  // Read after revocation: models a page whose ownership was flipped to the
  // guest on the fly (RMP un-share, §3.2 "explore revocation") — the host
  // can no longer race on it, so no TOCTOU window opens. Only revocation
  // receive paths may use this, and only after charging the un-share cost.
  ciobase::Status GuestReadOwned(uint64_t offset,
                                 ciobase::MutableByteSpan out) {
    return memory_->Read(Domain::kGuest, id_, offset, out);
  }

  // UNSAFE: a live pointer into shared memory, as used by unhardened designs
  // that parse descriptors in place. Everything read through this span is
  // re-readable by definition (double fetch) and the adversary's hook does
  // not even need to win a race. The hardened transports never use this.
  ciobase::MutableByteSpan UnsafeGuestWindow(uint64_t offset, uint64_t length) {
    RunTamperHook();
    return memory_->RawWindow(Domain::kGuest, id_, offset, length);
  }

  // --- Host-side access (the device model / adversary) --------------------

  ciobase::Status HostRead(uint64_t offset, ciobase::MutableByteSpan out) {
    return memory_->Read(Domain::kHost, id_, offset, out);
  }
  ciobase::Status HostWrite(uint64_t offset, ciobase::ByteSpan data) {
    return memory_->Write(Domain::kHost, id_, offset, data);
  }
  uint16_t HostReadLe16(uint64_t offset) {
    uint8_t raw[2] = {0, 0};
    HostRead(offset, raw);
    return ciobase::LoadLe16(raw);
  }
  uint32_t HostReadLe32(uint64_t offset) {
    uint8_t raw[4] = {0, 0, 0, 0};
    HostRead(offset, raw);
    return ciobase::LoadLe32(raw);
  }
  uint64_t HostReadLe64(uint64_t offset) {
    uint8_t raw[8] = {0};
    HostRead(offset, raw);
    return ciobase::LoadLe64(raw);
  }
  void HostWriteU8(uint64_t offset, uint8_t v) {
    HostWrite(offset, ciobase::ByteSpan(&v, 1));
  }
  void HostWriteLe16(uint64_t offset, uint16_t v) {
    uint8_t raw[2];
    ciobase::StoreLe16(raw, v);
    HostWrite(offset, raw);
  }
  void HostWriteLe32(uint64_t offset, uint32_t v) {
    uint8_t raw[4];
    ciobase::StoreLe32(raw, v);
    HostWrite(offset, raw);
  }
  void HostWriteLe64(uint64_t offset, uint64_t v) {
    uint8_t raw[8];
    ciobase::StoreLe64(raw, v);
    HostWrite(offset, raw);
  }
  ciobase::MutableByteSpan HostWindow(uint64_t offset, uint64_t length) {
    return memory_->RawWindow(Domain::kHost, id_, offset, length);
  }

  // Number of TOCTOU windows opened so far (guest-side accesses).
  uint64_t toctou_windows() const { return toctou_windows_; }

 private:
  void RunTamperHook() {
    ++toctou_windows_;
    if (tamper_hook_) {
      ciobase::MutableByteSpan all =
          memory_->RawWindow(Domain::kHost, id_, 0, size());
      tamper_hook_(all);
    }
  }

  TeeMemory* memory_;
  RegionId id_;
  TamperHook tamper_hook_;
  uint64_t toctou_windows_ = 0;
};

}  // namespace ciotee

#endif  // SRC_TEE_SHARED_REGION_H_
