// Attestation: measurement of a confidential unit and signed reports.
//
// Models the measure-then-attest flow of SEV-SNP/TDX/SGX (and, for directly
// attached devices, the SPDM flow of §3.4): a platform key known only to the
// simulated hardware MACs a report binding {measurement, config, nonce}. A
// verifier holding the platform key (standing in for the certificate chain)
// checks freshness and expected measurement before releasing secrets — in
// this codebase, before handing the TLS pre-shared key to a peer.

#ifndef SRC_TEE_ATTESTATION_H_
#define SRC_TEE_ATTESTATION_H_

#include <string>

#include "src/base/status.h"
#include "src/crypto/sha256.h"

namespace ciotee {

using Measurement = ciocrypto::Sha256Digest;

// Measures a confidential unit: hash over its code identity and launch-time
// configuration (the fixed L2 parameters of §3.2 are part of this, which is
// what makes "zero re-negotiation" attestable).
Measurement Measure(std::string_view code_identity, ciobase::ByteSpan config);

// Binds an admission challenge to a TLS handshake transcript:
// SHA256(challenge || transcript_hash). Issuing reports over the bound
// nonce ties them to one connection — a report lifted from another
// connection (different transcript) or signed over an old challenge fails
// nonce verification instead of being replayable.
ciobase::Buffer BindNonce(ciobase::ByteSpan challenge,
                          const ciocrypto::Sha256Digest& transcript_hash);

struct AttestationReport {
  Measurement measurement;
  ciobase::Buffer nonce;
  ciocrypto::Sha256Digest mac;

  ciobase::Buffer Serialize() const;
  static ciobase::Result<AttestationReport> Parse(ciobase::ByteSpan data);
};

// The simulated hardware root of trust.
class AttestationAuthority {
 public:
  explicit AttestationAuthority(ciobase::ByteSpan platform_key)
      : platform_key_(platform_key.begin(), platform_key.end()) {}

  AttestationReport Issue(const Measurement& measurement,
                          ciobase::ByteSpan nonce) const;

  // Checks MAC, nonce freshness, and expected measurement.
  ciobase::Status Verify(const AttestationReport& report,
                         const Measurement& expected,
                         ciobase::ByteSpan expected_nonce) const;

 private:
  ciocrypto::Sha256Digest ReportMac(const Measurement& measurement,
                                    ciobase::ByteSpan nonce) const;

  ciobase::Buffer platform_key_;
};

}  // namespace ciotee

#endif  // SRC_TEE_ATTESTATION_H_
