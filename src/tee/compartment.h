// Intra-TEE compartments: the lightweight L5 isolation boundary of §3.1.
//
// The paper's dual-boundary design places the I/O stack in its own
// compartment inside the TEE, isolated from the confidential application by
// a low-latency memory-isolation mechanism (MPK-style [25, 51, 52]) rather
// than a second enclave. We model a compartment as a named heap arena with
// ownership-tagged, generation-counted allocations. Cross-compartment access
// is subject to explicit grants; denied or stale (use-after-free) accesses
// are recorded and fail, which is the ground truth used by the attack
// campaign for "the compromised I/O stack tried to read application memory".

#ifndef SRC_TEE_COMPARTMENT_H_
#define SRC_TEE_COMPARTMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/clock.h"
#include "src/base/status.h"

namespace ciotee {

struct CompartmentId {
  uint32_t value = 0;
  bool operator==(const CompartmentId&) const = default;
};

// Handle to an allocation inside some compartment's arena. Generation
// counters make stale handles detectable (temporal interface safety [34]).
struct BufferHandle {
  CompartmentId owner;
  uint32_t slot = 0;
  uint32_t generation = 0;
  uint64_t size = 0;
};

class CompartmentManager {
 public:
  explicit CompartmentManager(ciobase::CostModel* costs) : costs_(costs) {}

  CompartmentManager(const CompartmentManager&) = delete;
  CompartmentManager& operator=(const CompartmentManager&) = delete;

  CompartmentId Create(std::string name, size_t heap_bytes);

  const std::string& Name(CompartmentId id) const;

  // Allows `accessor` to touch buffers owned by `owner` (directed grant).
  void GrantAccess(CompartmentId accessor, CompartmentId owner);

  // Allocates in `owner`'s arena. `requester` must be the owner or hold a
  // grant — this is how the paper's "trusted component allocates" policy is
  // expressed: the app (trusted by the I/O stack) allocates directly in the
  // I/O compartment, so no pointer from the stack ever needs verification.
  ciobase::Result<BufferHandle> Allocate(CompartmentId requester,
                                         CompartmentId owner, size_t bytes);
  ciobase::Status Free(CompartmentId requester, BufferHandle handle);

  // Maps a handle for access by `accessor`. Fails (and records a violation)
  // if the accessor lacks a grant, or the handle is stale or malformed.
  ciobase::Result<ciobase::MutableByteSpan> Access(CompartmentId accessor,
                                                   BufferHandle handle);

  // Revokes the owning compartment's access to an allocation and assigns it
  // to `new_owner` (the L5 analog of page un-sharing, §3.2): after the
  // transfer the previous owner's accesses fail like any other ungranted
  // access, so the new owner can parse the bytes in place without a copy.
  ciobase::Status Transfer(CompartmentId requester, BufferHandle handle,
                           CompartmentId new_owner);

  // Domain switch: charges the modeled intra-TEE switch cost.
  void SwitchTo(CompartmentId id);
  CompartmentId current() const { return current_; }
  uint64_t switch_count() const { return switch_count_; }

  struct AccessViolation {
    CompartmentId accessor;
    CompartmentId owner;
    std::string reason;
  };
  const std::vector<AccessViolation>& violations() const {
    return violations_;
  }
  void ClearViolations() { violations_.clear(); }

 private:
  struct Allocation {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t generation = 0;
    bool live = false;
    // Which compartment's grants govern access; normally the heap's own
    // compartment, changed by Transfer().
    uint32_t access_owner = 0;
  };
  struct Compartment {
    std::string name;
    ciobase::Buffer heap;
    // Bump allocator with whole-heap reclamation: I/O boundary buffers are
    // transient (allocate, cross, free), so the bump pointer rewinds to 0
    // whenever no allocation is live. Slot records are recycled via
    // free_slots but keep their generation counters (stale-handle checks).
    uint64_t bump = 0;
    size_t live_allocations = 0;
    std::vector<Allocation> slots;
    std::vector<uint32_t> free_slots;
  };

  bool HasGrant(CompartmentId accessor, CompartmentId owner) const;

  ciobase::CostModel* costs_;
  std::vector<Compartment> compartments_;
  std::vector<std::pair<uint32_t, uint32_t>> grants_;  // (accessor, owner)
  std::vector<AccessViolation> violations_;
  CompartmentId current_{0};
  uint64_t switch_count_ = 0;
};

}  // namespace ciotee

#endif  // SRC_TEE_COMPARTMENT_H_
