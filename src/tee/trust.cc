#include "src/tee/trust.h"

namespace ciotee {

std::string_view ActorName(Actor actor) {
  switch (actor) {
    case Actor::kApp:
      return "app";
    case Actor::kIoStack:
      return "io-stack";
    case Actor::kHostSw:
      return "host-sw";
    case Actor::kDevice:
      return "device";
  }
  return "?";
}

TrustModel::TrustModel() {
  for (int s = 0; s < kActorCount; ++s) {
    for (int o = 0; o < kActorCount; ++o) {
      matrix_[s][o] = (s == o);
    }
  }
}

void TrustModel::SetTrusts(Actor subject, Actor object, bool trusts) {
  matrix_[static_cast<int>(subject)][static_cast<int>(object)] = trusts;
}

bool TrustModel::Trusts(Actor subject, Actor object) const {
  return matrix_[static_cast<int>(subject)][static_cast<int>(object)];
}

std::string TrustModel::Describe() const {
  std::string out;
  for (int s = 0; s < kActorCount; ++s) {
    for (int o = 0; o < kActorCount; ++o) {
      if (s == o || !matrix_[s][o]) {
        continue;
      }
      out += ActorName(static_cast<Actor>(s));
      out += " trusts ";
      out += ActorName(static_cast<Actor>(o));
      out += "\n";
    }
  }
  return out;
}

TrustModel TrustModel::Binary() {
  TrustModel m;
  m.SetTrusts(Actor::kApp, Actor::kIoStack, true);
  m.SetTrusts(Actor::kIoStack, Actor::kApp, true);
  return m;
}

TrustModel TrustModel::Ternary() {
  TrustModel m;
  // Single distrust at L5: the I/O stack trusts the app, not vice versa.
  m.SetTrusts(Actor::kIoStack, Actor::kApp, true);
  return m;
}

TrustModel TrustModel::TernaryWithAttestedDevice() {
  TrustModel m = Ternary();
  m.SetTrusts(Actor::kApp, Actor::kDevice, true);
  m.SetTrusts(Actor::kIoStack, Actor::kDevice, true);
  return m;
}

TrustModel TrustModel::BinaryWithAttestedDevice() {
  TrustModel m = Binary();
  m.SetTrusts(Actor::kApp, Actor::kDevice, true);
  m.SetTrusts(Actor::kIoStack, Actor::kDevice, true);
  return m;
}

}  // namespace ciotee
