// MonotonicCounter: a model of the hardware non-volatile anti-rollback
// counter a confidential VM gets from its platform (SNP's VMPL-protected
// versioned state, TDX's TDG.SYS services, or a vTPM NV counter).
//
// The storage stack's freshness story (SGX-LKL-style) needs exactly one
// trusted primitive that survives host restarts and that the host cannot
// rewind: a counter that only ever moves forward. EncryptedBlockClient
// binds the epoch of its persisted generation table to this counter — a
// host that restores yesterday's disk image presents a table whose epoch
// is behind the counter, which remount rejects as kTampered.
//
// The model is deliberately tiny: it lives in guest-trusted memory in the
// simulation (the host never gets a pointer to it), and forward-only
// semantics are enforced here so no caller can accidentally rewind it.

#ifndef SRC_TEE_MONOTONIC_COUNTER_H_
#define SRC_TEE_MONOTONIC_COUNTER_H_

#include <cstdint>

namespace ciotee {

class MonotonicCounter {
 public:
  explicit MonotonicCounter(uint64_t initial = 0) : value_(initial) {}

  uint64_t value() const { return value_; }

  // Advances to `target`. Requests to move backwards are ignored (the
  // hardware refuses); returns true if the counter actually advanced.
  bool BumpTo(uint64_t target) {
    if (target <= value_) {
      return false;
    }
    value_ = target;
    ++bumps_;
    return true;
  }

  uint64_t bumps() const { return bumps_; }

 private:
  uint64_t value_;
  uint64_t bumps_ = 0;
};

}  // namespace ciotee

#endif  // SRC_TEE_MONOTONIC_COUNTER_H_
