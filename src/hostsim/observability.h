// ObservabilityLog: what a curious (honest-but-curious or malicious) host
// learns by watching a confidential workload do I/O.
//
// §2.2 names observability by the host as the second vulnerability vector:
// "I/O metadata, ordering and types of I/O calls" allow the host to infer
// information about the TEE [3]. §2.4 argues the boundary level controls the
// leak: at L2 the host learns no more than a network observer (packet sizes
// and timings); at L5/syscall level it additionally sees which calls are
// made, their arguments (socket options, addresses), accept timings, and
// exact application-message boundaries.
//
// Every host-visible action in the simulation reports an ObservedEvent here,
// tagged with a category and an estimate of the metadata bits it leaks. The
// observability score of a design is the sum of leaked bits per operation —
// the "Obs." axis of Figure 5.

#ifndef SRC_HOSTSIM_OBSERVABILITY_H_
#define SRC_HOSTSIM_OBSERVABILITY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ciohost {

enum class ObsCategory {
  kPacketLength,    // L2: frame length on the wire
  kPacketTiming,    // L2: when a frame crossed the boundary
  kDoorbell,        // notification/kick (presence + timing)
  kCallType,        // syscall boundary: which operation was invoked
  kCallArgs,        // syscall boundary: addresses, ports, option values
  kMessageBoundary, // syscall boundary: exact application message sizes
  kPayload,         // plaintext payload visible to the host (worst case)
  kConfigField,     // device config/negotiation state transitions
};

std::string_view ObsCategoryName(ObsCategory category);

// Rough per-event information content in bits, used for scoring.
uint32_t ObsCategoryBits(ObsCategory category);

struct ObservedEvent {
  ObsCategory category;
  uint64_t value;     // length, call id, etc. (whatever the host saw)
  std::string note;
};

// Named monotonic counters for component lifecycle accounting (e.g. the
// multi-tenant server's accepted / rejected-at-admission / active /
// recovered connections). Unlike ObservedEvent records these are guest-side
// operational telemetry, not host-visible leakage — they ride on the
// observability layer so every surface that already scrapes it (benchmarks,
// the campaign reports) can pick them up without new plumbing.
class CounterSet {
 public:
  void Add(std::string_view name, uint64_t delta = 1) {
    counters_[std::string(name)] += delta;
  }
  void Set(std::string_view name, uint64_t value) {
    counters_[std::string(name)] = value;
  }
  uint64_t Get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t, std::less<>>& all() const {
    return counters_;
  }

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
};

class ObservabilityLog {
 public:
  void Record(ObsCategory category, uint64_t value, std::string note = "") {
    events_.push_back({category, value, std::move(note)});
    ++counts_[category];
    bits_ += ObsCategoryBits(category);
  }

  size_t EventCount() const { return events_.size(); }
  uint64_t TotalBits() const { return bits_; }
  size_t CountOf(ObsCategory category) const {
    auto it = counts_.find(category);
    return it == counts_.end() ? 0 : it->second;
  }
  size_t DistinctCategories() const { return counts_.size(); }
  const std::vector<ObservedEvent>& events() const { return events_; }

  // Leaked metadata bits per application-level operation; the Figure 5
  // observability metric.
  double BitsPerOp(uint64_t ops) const {
    return ops == 0 ? 0.0
                    : static_cast<double>(bits_) / static_cast<double>(ops);
  }

  // Bits from events a plain *network observer* could NOT have seen: call
  // types/arguments, message boundaries, config traffic, plaintext. §2.4's
  // claim is that an L2 boundary leaks zero beyond-network bits, while a
  // syscall-level boundary leaks plenty.
  uint64_t BeyondNetworkBits() const {
    uint64_t network = 0;
    for (ObsCategory category :
         {ObsCategory::kPacketLength, ObsCategory::kPacketTiming,
          ObsCategory::kDoorbell}) {
      auto it = counts_.find(category);
      if (it != counts_.end()) {
        network += it->second * ObsCategoryBits(category);
      }
    }
    return bits_ - network;
  }
  double BeyondNetworkBitsPerOp(uint64_t ops) const {
    return ops == 0 ? 0.0
                    : static_cast<double>(BeyondNetworkBits()) /
                          static_cast<double>(ops);
  }

  // Empirical Shannon entropy (bits) of the observed packet-length values:
  // how much a network observer actually learns per frame from sizes. A
  // tunneled design that pads every frame to one fixed size drives this to
  // zero (the LightBox corner of Figure 5) even though frames still flow.
  double PacketLengthEntropyBits() const;

  void Clear() {
    events_.clear();
    counts_.clear();
    bits_ = 0;
  }

  // Operational lifecycle counters (see CounterSet above). Not part of the
  // leakage score; Clear() leaves them alone.
  CounterSet& counters() { return counters_set_; }
  const CounterSet& counters() const { return counters_set_; }

 private:
  std::vector<ObservedEvent> events_;
  std::map<ObsCategory, size_t> counts_;
  uint64_t bits_ = 0;
  CounterSet counters_set_;
};

}  // namespace ciohost

#endif  // SRC_HOSTSIM_OBSERVABILITY_H_
