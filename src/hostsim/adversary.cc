#include "src/hostsim/adversary.h"

#include <cstring>

namespace ciohost {

std::string_view AttackStrategyName(AttackStrategy strategy) {
  switch (strategy) {
    case AttackStrategy::kNone:
      return "none";
    case AttackStrategy::kDoubleFetchLength:
      return "double-fetch-length";
    case AttackStrategy::kDoubleFetchOffset:
      return "double-fetch-offset";
    case AttackStrategy::kOobDescriptor:
      return "oob-descriptor";
    case AttackStrategy::kUsedLenInflation:
      return "used-len-inflation";
    case AttackStrategy::kReplayCompletion:
      return "replay-completion";
    case AttackStrategy::kIndexStorm:
      return "index-storm";
    case AttackStrategy::kCorruptPayload:
      return "corrupt-payload";
    case AttackStrategy::kMalformedChain:
      return "malformed-chain";
  }
  return "?";
}

std::vector<AttackStrategy> AllAttackStrategies() {
  return {AttackStrategy::kDoubleFetchLength,
          AttackStrategy::kDoubleFetchOffset,
          AttackStrategy::kOobDescriptor,
          AttackStrategy::kUsedLenInflation,
          AttackStrategy::kReplayCompletion,
          AttackStrategy::kIndexStorm,
          AttackStrategy::kCorruptPayload,
          AttackStrategy::kMalformedChain};
}

std::string_view FaultStrategyName(FaultStrategy strategy) {
  switch (strategy) {
    case FaultStrategy::kNone:
      return "none";
    case FaultStrategy::kSwallowDoorbell:
      return "swallow-doorbell";
    case FaultStrategy::kStallCounters:
      return "stall-counters";
    case FaultStrategy::kGarbageCounters:
      return "garbage-counters";
    case FaultStrategy::kDropFrames:
      return "drop-frames";
    case FaultStrategy::kDuplicateFrames:
      return "duplicate-frames";
    case FaultStrategy::kTornWrite:
      return "torn-write";
    case FaultStrategy::kLinkKill:
      return "link-kill";
    case FaultStrategy::kDropCompletions:
      return "drop-completions";
    case FaultStrategy::kBitRot:
      return "bit-rot";
  }
  return "?";
}

std::vector<FaultStrategy> AllFaultStrategies() {
  return {FaultStrategy::kSwallowDoorbell, FaultStrategy::kStallCounters,
          FaultStrategy::kGarbageCounters, FaultStrategy::kDropFrames,
          FaultStrategy::kDuplicateFrames, FaultStrategy::kTornWrite,
          FaultStrategy::kLinkKill};
}

std::vector<FaultStrategy> AllStorageFaultStrategies() {
  return {FaultStrategy::kSwallowDoorbell, FaultStrategy::kStallCounters,
          FaultStrategy::kGarbageCounters, FaultStrategy::kTornWrite,
          FaultStrategy::kLinkKill,        FaultStrategy::kDropCompletions,
          FaultStrategy::kBitRot};
}

bool Adversary::FaultActive(FaultStrategy strategy, uint64_t now_ns) {
  for (const FaultWindow& fault : faults_) {
    if (fault.strategy == strategy && fault.ActiveAt(now_ns)) {
      ++fault_events_;
      return true;
    }
  }
  return false;
}

void Adversary::Arm(ciotee::SharedRegion* region,
                    std::vector<SurfaceField> surface) {
  region_ = region;
  surface_ = std::move(surface);
  saved_.assign(surface_.size(), {});
  window_ = 0;
  region_->SetTamperHook(
      [this](ciobase::MutableByteSpan shared) { TamperWindow(shared); });
}

void Adversary::Disarm() {
  if (region_ != nullptr) {
    region_->ClearTamperHook();
    region_ = nullptr;
  }
  surface_.clear();
  saved_.clear();
}

void Adversary::FlipField(ciobase::MutableByteSpan shared,
                          const SurfaceField& field, bool hostile) {
  if (field.offset + field.width > shared.size()) {
    return;
  }
  size_t i = static_cast<size_t>(&field - surface_.data());
  if (hostile) {
    // Save the honest bytes, then write an out-of-range hostile value.
    saved_[i].assign(shared.begin() + static_cast<long>(field.offset),
                     shared.begin() + static_cast<long>(field.offset) +
                         field.width);
    std::memset(shared.data() + field.offset, 0xff, field.width);
    ++tamper_count_;
  } else if (saved_[i].size() == field.width) {
    // Restore the honest value so the *next* fetch looks clean again.
    std::memcpy(shared.data() + field.offset, saved_[i].data(), field.width);
  }
}

void Adversary::TamperWindow(ciobase::MutableByteSpan shared) {
  if (shared.empty()) {
    return;
  }
  ++window_;
  switch (strategy_) {
    case AttackStrategy::kNone:
    case AttackStrategy::kUsedLenInflation:
    case AttackStrategy::kReplayCompletion:
    case AttackStrategy::kMalformedChain:
      // Behavioral-only strategies do not race on memory.
      return;
    case AttackStrategy::kDoubleFetchLength:
      // Alternate hostile/honest so that a validate-fetch can see the honest
      // value while the use-fetch sees the hostile one (or vice versa).
      for (const auto& field : surface_) {
        if (field.kind == FieldKind::kLength) {
          FlipField(shared, field, window_ % 2 == 0);
        }
      }
      return;
    case AttackStrategy::kDoubleFetchOffset:
      for (const auto& field : surface_) {
        if (field.kind == FieldKind::kOffset) {
          FlipField(shared, field, window_ % 2 == 0);
        }
      }
      return;
    case AttackStrategy::kOobDescriptor:
      // Persistently hostile offsets and lengths: not a race, a bad post.
      for (const auto& field : surface_) {
        if (field.kind == FieldKind::kOffset ||
            field.kind == FieldKind::kLength) {
          FlipField(shared, field, /*hostile=*/true);
        }
      }
      return;
    case AttackStrategy::kIndexStorm:
      for (const auto& field : surface_) {
        if (field.kind == FieldKind::kIndex) {
          FlipField(shared, field, /*hostile=*/true);
        }
      }
      return;
    case AttackStrategy::kCorruptPayload:
      for (const auto& field : surface_) {
        if (field.kind == FieldKind::kPayload &&
            field.offset < shared.size()) {
          // Flip one byte per window somewhere in the payload area.
          uint64_t pos =
              field.offset + rng_.NextBounded(std::min<uint64_t>(
                                 field.width, shared.size() - field.offset));
          shared[pos] ^= 0x5a;
          ++tamper_count_;
        }
      }
      return;
  }
}

uint32_t Adversary::MutateUsedLen(uint32_t honest_len,
                                  uint32_t buffer_capacity) {
  if (strategy_ == AttackStrategy::kUsedLenInflation) {
    ++behavior_count_;
    // Claim vastly more than was written: far beyond the buffer, the pool,
    // and the shared region itself.
    return buffer_capacity + 0x40000000;
  }
  return honest_len;
}

bool Adversary::ShouldReplayCompletion() {
  if (strategy_ == AttackStrategy::kReplayCompletion) {
    ++behavior_count_;
    return true;
  }
  return false;
}

uint16_t Adversary::MutatePublishedIndex(uint16_t honest_index) {
  if (strategy_ == AttackStrategy::kIndexStorm) {
    ++behavior_count_;
    return static_cast<uint16_t>(honest_index + 0x7fff);
  }
  return honest_index;
}

uint64_t Adversary::MutatePublishedCounter(uint64_t honest_counter) {
  if (strategy_ == AttackStrategy::kIndexStorm) {
    ++behavior_count_;
    return honest_counter + 0x7fff;
  }
  return honest_counter;
}

void Adversary::MaybeCorruptPayload(ciobase::MutableByteSpan payload) {
  if (strategy_ == AttackStrategy::kCorruptPayload && !payload.empty()) {
    ++behavior_count_;
    payload[rng_.NextBounded(payload.size())] ^= 0xa5;
  }
}

bool Adversary::ShouldMalformChain() {
  if (strategy_ == AttackStrategy::kMalformedChain) {
    ++behavior_count_;
    return true;
  }
  return false;
}

}  // namespace ciohost
