#include "src/hostsim/observability.h"

#include <cmath>

namespace ciohost {

double ObservabilityLog::PacketLengthEntropyBits() const {
  std::map<uint64_t, size_t> histogram;
  size_t total = 0;
  for (const ObservedEvent& event : events_) {
    if (event.category == ObsCategory::kPacketLength) {
      ++histogram[event.value];
      ++total;
    }
  }
  if (total == 0) {
    return 0.0;
  }
  double entropy = 0.0;
  for (const auto& [length, count] : histogram) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::string_view ObsCategoryName(ObsCategory category) {
  switch (category) {
    case ObsCategory::kPacketLength:
      return "packet-length";
    case ObsCategory::kPacketTiming:
      return "packet-timing";
    case ObsCategory::kDoorbell:
      return "doorbell";
    case ObsCategory::kCallType:
      return "call-type";
    case ObsCategory::kCallArgs:
      return "call-args";
    case ObsCategory::kMessageBoundary:
      return "message-boundary";
    case ObsCategory::kPayload:
      return "payload";
    case ObsCategory::kConfigField:
      return "config-field";
  }
  return "?";
}

uint32_t ObsCategoryBits(ObsCategory category) {
  // Order-of-magnitude information content per observed event. A network
  // observer sees lengths (~11 bits for <=2048B frames) and coarse timing
  // (~8 bits). A syscall-level host additionally learns the call type
  // (~5 bits over ~32 I/O calls), its arguments (~32 bits: addresses,
  // ports, socket options), and exact message boundaries (~12 bits).
  // A plaintext payload is counted at 64 bits per event as a (gross)
  // underestimate that still dominates every metadata category.
  switch (category) {
    case ObsCategory::kPacketLength:
      return 11;
    case ObsCategory::kPacketTiming:
      return 8;
    case ObsCategory::kDoorbell:
      return 4;
    case ObsCategory::kCallType:
      return 5;
    case ObsCategory::kCallArgs:
      return 32;
    case ObsCategory::kMessageBoundary:
      return 12;
    case ObsCategory::kPayload:
      return 64;
    case ObsCategory::kConfigField:
      return 16;
  }
  return 0;
}

}  // namespace ciohost
