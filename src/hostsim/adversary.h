// Adversary: a malicious host attacking the confidential I/O interface.
//
// Two attack channels, matching how a hostile hypervisor really operates:
//
//  1. Memory tampering. The adversary installs a tamper hook on the shared
//     region (ciotee::SharedRegion) which runs before *every* guest access —
//     the TOCTOU window. Transports register their attack surface (where
//     length/index/payload fields live in shared memory) and the adversary
//     mutates those fields. For double-fetch strategies it alternates
//     between the original and a hostile value across windows, so designs
//     that read a field twice (validate in place, then use in place) get
//     exploited while single-fetch designs ("copy as a first-class citizen")
//     either proceed safely or reject cleanly.
//
//  2. Behavioral attacks. The host-side device model itself consults the
//     adversary: inflate used-lengths, replay completions, post malformed
//     descriptor chains, jump indices. These model a compromised device
//     backend rather than a memory racer.
//
//  3. Transient faults. Time-windowed denial behaviors — swallowed
//     doorbells, stalled or garbage counters, dropped/duplicated frames,
//     torn descriptor writes, outright link kill — injected at a chosen
//     simulated time for a chosen duration. These exercise the guest's
//     *recovery* machinery (watchdogs, ring reset, TLS re-establishment)
//     rather than its safety checks: the question is not "does the guest
//     stay uncorrupted" but "does the guest come back".
//
// The campaign harness (src/cio/attack_campaign.*) decides the outcome of
// each attack from ground truth: TEE memory violations, compartment
// violations, delivered-vs-sent payload comparison, and AEAD failures.

#ifndef SRC_HOSTSIM_ADVERSARY_H_
#define SRC_HOSTSIM_ADVERSARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/tee/shared_region.h"

namespace ciohost {

enum class AttackStrategy {
  kNone = 0,
  kDoubleFetchLength,  // flip a length field between validation and use
  kDoubleFetchOffset,  // flip an offset/address field between fetches
  kOobDescriptor,      // make descriptors point outside the legal pool
  kUsedLenInflation,   // report completions longer than the posted buffer
  kReplayCompletion,   // replay a stale completion (temporal violation)
  kIndexStorm,         // advance ring indices far beyond the valid window
  kCorruptPayload,     // flip payload bytes (integrity attack)
  kMalformedChain,     // loop / overlong descriptor chains
};
inline constexpr int kAttackStrategyCount = 9;

std::string_view AttackStrategyName(AttackStrategy strategy);
std::vector<AttackStrategy> AllAttackStrategies();

// Transient host faults: each denies service in a different way while the
// fault window is open, then the host resumes honest behavior. A recovering
// guest should notice the stall (watchdog), reset and reattach its ring, and
// let TCP/TLS replay whatever was in flight.
enum class FaultStrategy {
  kNone = 0,
  kSwallowDoorbell,   // guest kicks are silently ignored
  kStallCounters,     // host processes nothing and publishes no progress
  kGarbageCounters,   // host publishes absurd ring counters / used indices
  kDropFrames,        // frames vanish between ring and fabric, both ways
  kDuplicateFrames,   // every frame is delivered twice
  kTornWrite,         // RX payloads / disk blocks are written only partially
  kLinkKill,          // the device goes completely dead for the window
  kDropCompletions,   // storage ops execute but their completions vanish
  kBitRot,            // storage reads return bytes with a flipped bit
};
inline constexpr int kFaultStrategyCount = 10;

std::string_view FaultStrategyName(FaultStrategy strategy);
// Every injectable network-path fault (excluding kNone), for campaign sweeps.
std::vector<FaultStrategy> AllFaultStrategies();
// Every fault the storage path campaign sweeps: the network set minus the
// frame-level faults (the block ring has no frames) plus the storage-only
// faults (dropped completions, bit rot).
std::vector<FaultStrategy> AllStorageFaultStrategies();

// A fault armed at a point in simulated time, active over the half-open
// interval [start_ns, start_ns + duration_ns).
//
// Semantics (pinned by tests/fuzz_test.cc):
//  - duration_ns == 0 on a directly-constructed window means the fault
//    never clears (a permanently hostile host). Use Permanent() to say so
//    explicitly; Timed() treats a zero duration as an EMPTY window (never
//    active) instead, so computed durations degrade to a no-op rather than
//    silently escalating to forever.
//  - strategy == kNone is never active, whatever the interval says.
//  - Overlapping windows of the same strategy form a union: the fault is
//    active whenever any window covers `now`. Windows of different
//    strategies are independent. Adversary::FaultActive counts at most one
//    fault event per query however many windows overlap.
struct FaultWindow {
  FaultStrategy strategy = FaultStrategy::kNone;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;

  static FaultWindow Permanent(FaultStrategy strategy, uint64_t start_ns) {
    return {strategy, start_ns, 0};
  }
  static FaultWindow Timed(FaultStrategy strategy, uint64_t start_ns,
                           uint64_t duration_ns) {
    if (duration_ns == 0) {
      return {FaultStrategy::kNone, start_ns, 0};  // empty, not permanent
    }
    return {strategy, start_ns, duration_ns};
  }

  bool ActiveAt(uint64_t now_ns) const {
    if (strategy == FaultStrategy::kNone || now_ns < start_ns) {
      return false;
    }
    return duration_ns == 0 || now_ns - start_ns < duration_ns;
  }
};

// Where interesting fields live in a shared region; registered by transports.
enum class FieldKind { kLength, kOffset, kIndex, kPayload, kFlags };

struct SurfaceField {
  FieldKind kind;
  uint64_t offset;  // byte offset in the shared region
  uint32_t width;   // bytes: 1, 2, 4, or 8
};

class Adversary {
 public:
  explicit Adversary(uint64_t seed) : rng_(seed) {}

  void set_strategy(AttackStrategy strategy) { strategy_ = strategy; }
  AttackStrategy strategy() const { return strategy_; }

  // Registers the transport's attack surface and installs the tamper hook.
  void Arm(ciotee::SharedRegion* region, std::vector<SurfaceField> surface);
  void Disarm();

  // --- Behavioral attack queries (called by host-side device models) -------

  // Possibly inflates a completion length the device is about to report.
  uint32_t MutateUsedLen(uint32_t honest_len, uint32_t buffer_capacity);
  // True if the device should replay the previous completion entry.
  bool ShouldReplayCompletion();
  // Possibly perturbs an index the device is about to publish.
  uint16_t MutatePublishedIndex(uint16_t honest_index);
  // 64-bit counter variant (the hardened L2 transport's monotonic counters).
  uint64_t MutatePublishedCounter(uint64_t honest_counter);
  // Possibly corrupts an outgoing/incoming payload in place.
  void MaybeCorruptPayload(ciobase::MutableByteSpan payload);
  // True if the device should emit a malformed (looping/overlong) chain.
  bool ShouldMalformChain();

  // --- Transient fault injection (consulted by host device poll loops) -----

  // Arms a fault window. Windows accumulate until ClearFaults().
  void InjectFault(FaultWindow window) { faults_.push_back(window); }
  void ClearFaults() { faults_.clear(); }

  // True if `strategy` is active at `now_ns`; counts each hit as a fault
  // event so campaigns can assert the fault actually fired.
  bool FaultActive(FaultStrategy strategy, uint64_t now_ns);

  uint64_t tamper_count() const { return tamper_count_; }
  uint64_t behavior_count() const { return behavior_count_; }
  uint64_t fault_events() const { return fault_events_; }
  void ResetCounters() {
    tamper_count_ = 0;
    behavior_count_ = 0;
    fault_events_ = 0;
  }

 private:
  void TamperWindow(ciobase::MutableByteSpan shared);
  void FlipField(ciobase::MutableByteSpan shared, const SurfaceField& field,
                 bool hostile);

  ciobase::Rng rng_;
  AttackStrategy strategy_ = AttackStrategy::kNone;
  ciotee::SharedRegion* region_ = nullptr;
  std::vector<SurfaceField> surface_;
  // Saved original bytes for alternating double-fetch flips.
  std::vector<ciobase::Buffer> saved_;
  uint64_t window_ = 0;
  uint64_t tamper_count_ = 0;
  uint64_t behavior_count_ = 0;
  std::vector<FaultWindow> faults_;
  uint64_t fault_events_ = 0;
};

}  // namespace ciohost

#endif  // SRC_HOSTSIM_ADVERSARY_H_
