#include "src/crypto/poly1305.h"

#include <cstring>

namespace ciocrypto {

Poly1305::Poly1305(const uint8_t key[kPoly1305KeySize]) {
  // r is clamped per the RFC.
  uint32_t t0 = ciobase::LoadLe32(key + 0);
  uint32_t t1 = ciobase::LoadLe32(key + 4);
  uint32_t t2 = ciobase::LoadLe32(key + 8);
  uint32_t t3 = ciobase::LoadLe32(key + 12);
  r_[0] = t0 & 0x3ffffff;
  r_[1] = ((t0 >> 26) | (t1 << 6)) & 0x3ffff03;
  r_[2] = ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff;
  r_[3] = ((t2 >> 14) | (t3 << 18)) & 0x3f03fff;
  r_[4] = (t3 >> 8) & 0x00fffff;
  std::memset(h_, 0, sizeof(h_));
  for (int i = 0; i < 4; ++i) {
    s_[i] = ciobase::LoadLe32(key + 16 + i * 4);
  }
}

void Poly1305::Block(const uint8_t* block, uint8_t pad_bit) {
  uint32_t t0 = ciobase::LoadLe32(block + 0);
  uint32_t t1 = ciobase::LoadLe32(block + 4);
  uint32_t t2 = ciobase::LoadLe32(block + 8);
  uint32_t t3 = ciobase::LoadLe32(block + 12);

  // h += message block (with the 2^128 pad bit).
  h_[0] += t0 & 0x3ffffff;
  h_[1] += ((t0 >> 26) | (t1 << 6)) & 0x3ffffff;
  h_[2] += ((t1 >> 20) | (t2 << 12)) & 0x3ffffff;
  h_[3] += ((t2 >> 14) | (t3 << 18)) & 0x3ffffff;
  h_[4] += (t3 >> 8) | (static_cast<uint32_t>(pad_bit) << 24);

  // h *= r mod 2^130 - 5.
  uint64_t d0 = static_cast<uint64_t>(h_[0]) * r_[0] +
                static_cast<uint64_t>(h_[1]) * (5 * r_[4]) +
                static_cast<uint64_t>(h_[2]) * (5 * r_[3]) +
                static_cast<uint64_t>(h_[3]) * (5 * r_[2]) +
                static_cast<uint64_t>(h_[4]) * (5 * r_[1]);
  uint64_t d1 = static_cast<uint64_t>(h_[0]) * r_[1] +
                static_cast<uint64_t>(h_[1]) * r_[0] +
                static_cast<uint64_t>(h_[2]) * (5 * r_[4]) +
                static_cast<uint64_t>(h_[3]) * (5 * r_[3]) +
                static_cast<uint64_t>(h_[4]) * (5 * r_[2]);
  uint64_t d2 = static_cast<uint64_t>(h_[0]) * r_[2] +
                static_cast<uint64_t>(h_[1]) * r_[1] +
                static_cast<uint64_t>(h_[2]) * r_[0] +
                static_cast<uint64_t>(h_[3]) * (5 * r_[4]) +
                static_cast<uint64_t>(h_[4]) * (5 * r_[3]);
  uint64_t d3 = static_cast<uint64_t>(h_[0]) * r_[3] +
                static_cast<uint64_t>(h_[1]) * r_[2] +
                static_cast<uint64_t>(h_[2]) * r_[1] +
                static_cast<uint64_t>(h_[3]) * r_[0] +
                static_cast<uint64_t>(h_[4]) * (5 * r_[4]);
  uint64_t d4 = static_cast<uint64_t>(h_[0]) * r_[4] +
                static_cast<uint64_t>(h_[1]) * r_[3] +
                static_cast<uint64_t>(h_[2]) * r_[2] +
                static_cast<uint64_t>(h_[3]) * r_[1] +
                static_cast<uint64_t>(h_[4]) * r_[0];

  // Carry propagation.
  uint64_t c;
  c = d0 >> 26;
  h_[0] = static_cast<uint32_t>(d0) & 0x3ffffff;
  d1 += c;
  c = d1 >> 26;
  h_[1] = static_cast<uint32_t>(d1) & 0x3ffffff;
  d2 += c;
  c = d2 >> 26;
  h_[2] = static_cast<uint32_t>(d2) & 0x3ffffff;
  d3 += c;
  c = d3 >> 26;
  h_[3] = static_cast<uint32_t>(d3) & 0x3ffffff;
  d4 += c;
  c = d4 >> 26;
  h_[4] = static_cast<uint32_t>(d4) & 0x3ffffff;
  h_[0] += static_cast<uint32_t>(c * 5);
  c = h_[0] >> 26;
  h_[0] &= 0x3ffffff;
  h_[1] += static_cast<uint32_t>(c);
}

void Poly1305::Update(ciobase::ByteSpan data) {
  size_t i = 0;
  if (buffered_ > 0) {
    size_t take = std::min(static_cast<size_t>(16) - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    i += take;
    if (buffered_ == 16) {
      Block(buffer_, 1);
      buffered_ = 0;
    }
  }
  while (i + 16 <= data.size()) {
    Block(data.data() + i, 1);
    i += 16;
  }
  if (i < data.size()) {
    std::memcpy(buffer_, data.data() + i, data.size() - i);
    buffered_ = data.size() - i;
  }
}

Poly1305Tag Poly1305::Finish() {
  if (buffered_ > 0) {
    // Final partial block: append 0x01 then zero-pad; no 2^128 bit.
    uint8_t final_block[16] = {0};
    std::memcpy(final_block, buffer_, buffered_);
    final_block[buffered_] = 1;
    Block(final_block, 0);
    buffered_ = 0;
  }

  // Full carry.
  uint32_t c;
  c = h_[1] >> 26;
  h_[1] &= 0x3ffffff;
  h_[2] += c;
  c = h_[2] >> 26;
  h_[2] &= 0x3ffffff;
  h_[3] += c;
  c = h_[3] >> 26;
  h_[3] &= 0x3ffffff;
  h_[4] += c;
  c = h_[4] >> 26;
  h_[4] &= 0x3ffffff;
  h_[0] += c * 5;
  c = h_[0] >> 26;
  h_[0] &= 0x3ffffff;
  h_[1] += c;

  // Compute h + -p and select it if h >= p (constant-time select).
  uint32_t g0 = h_[0] + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  uint32_t g1 = h_[1] + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  uint32_t g2 = h_[2] + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  uint32_t g3 = h_[3] + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  uint32_t g4 = h_[4] + c - (1u << 26);

  uint32_t mask = (g4 >> 31) - 1;  // all-ones if g4 did not underflow
  g0 = (g0 & mask) | (h_[0] & ~mask);
  g1 = (g1 & mask) | (h_[1] & ~mask);
  g2 = (g2 & mask) | (h_[2] & ~mask);
  g3 = (g3 & mask) | (h_[3] & ~mask);
  g4 = (g4 & mask) | (h_[4] & ~mask);

  // Serialize to 128 bits and add s.
  uint32_t w0 = g0 | (g1 << 26);
  uint32_t w1 = (g1 >> 6) | (g2 << 20);
  uint32_t w2 = (g2 >> 12) | (g3 << 14);
  uint32_t w3 = (g3 >> 18) | (g4 << 8);

  uint64_t f;
  Poly1305Tag tag;
  f = static_cast<uint64_t>(w0) + s_[0];
  ciobase::StoreLe32(tag.data() + 0, static_cast<uint32_t>(f));
  f = static_cast<uint64_t>(w1) + s_[1] + (f >> 32);
  ciobase::StoreLe32(tag.data() + 4, static_cast<uint32_t>(f));
  f = static_cast<uint64_t>(w2) + s_[2] + (f >> 32);
  ciobase::StoreLe32(tag.data() + 8, static_cast<uint32_t>(f));
  f = static_cast<uint64_t>(w3) + s_[3] + (f >> 32);
  ciobase::StoreLe32(tag.data() + 12, static_cast<uint32_t>(f));
  return tag;
}

Poly1305Tag Poly1305::Mac(const uint8_t key[kPoly1305KeySize],
                          ciobase::ByteSpan data) {
  Poly1305 p(key);
  p.Update(data);
  return p.Finish();
}

}  // namespace ciocrypto
