// Poly1305 one-time authenticator (RFC 8439 §2.5), from scratch.
// Implemented with 26-bit limbs over 64-bit accumulators.

#ifndef SRC_CRYPTO_POLY1305_H_
#define SRC_CRYPTO_POLY1305_H_

#include <array>
#include <cstdint>

#include "src/base/bytes.h"

namespace ciocrypto {

inline constexpr size_t kPoly1305KeySize = 32;
inline constexpr size_t kPoly1305TagSize = 16;

using Poly1305Tag = std::array<uint8_t, kPoly1305TagSize>;

class Poly1305 {
 public:
  explicit Poly1305(const uint8_t key[kPoly1305KeySize]);

  void Update(ciobase::ByteSpan data);
  Poly1305Tag Finish();

  static Poly1305Tag Mac(const uint8_t key[kPoly1305KeySize],
                         ciobase::ByteSpan data);

 private:
  void Block(const uint8_t* block, uint8_t pad_bit);

  uint32_t r_[5];
  uint32_t h_[5];
  uint32_t s_[4];  // the "s" half of the key, added at the end
  uint8_t buffer_[16];
  size_t buffered_ = 0;
};

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_POLY1305_H_
