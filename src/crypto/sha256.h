// SHA-256 (FIPS 180-4), from scratch.
//
// Used for attestation measurements, the TLS-like transcript hash, HMAC, and
// HKDF. Incremental (Update/Finish) and one-shot interfaces.

#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/base/bytes.h"

namespace ciocrypto {

inline constexpr size_t kSha256DigestSize = 32;
inline constexpr size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ciobase::ByteSpan data);
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(ciobase::ByteSpan data);

 private:
  void Compress(const uint8_t* block);

  uint32_t state_[8];
  uint64_t length_ = 0;  // total bytes absorbed
  uint8_t buffer_[kSha256BlockSize];
  size_t buffered_ = 0;
};

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_SHA256_H_
