#include "src/crypto/sha256.h"

#include <cstring>

#include "src/base/bits.h"

namespace ciocrypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

using ciobase::RotR32;

inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (~x & z);
}
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}
inline uint32_t BigSigma0(uint32_t x) {
  return RotR32(x, 2) ^ RotR32(x, 13) ^ RotR32(x, 22);
}
inline uint32_t BigSigma1(uint32_t x) {
  return RotR32(x, 6) ^ RotR32(x, 11) ^ RotR32(x, 25);
}
inline uint32_t SmallSigma0(uint32_t x) {
  return RotR32(x, 7) ^ RotR32(x, 18) ^ (x >> 3);
}
inline uint32_t SmallSigma1(uint32_t x) {
  return RotR32(x, 17) ^ RotR32(x, 19) ^ (x >> 10);
}

}  // namespace

void Sha256::Reset() {
  static constexpr uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                        0xa54ff53a, 0x510e527f, 0x9b05688c,
                                        0x1f83d9ab, 0x5be0cd19};
  std::memcpy(state_, kInit, sizeof(state_));
  length_ = 0;
  buffered_ = 0;
}

void Sha256::Compress(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = ciobase::LoadBe32(block + i * 4);
  }
  for (int i = 16; i < 64; ++i) {
    w[i] = SmallSigma1(w[i - 2]) + w[i - 7] + SmallSigma0(w[i - 15]) +
           w[i - 16];
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kK[i] + w[i];
    uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(ciobase::ByteSpan data) {
  length_ += data.size();
  size_t i = 0;
  if (buffered_ > 0) {
    size_t take = std::min(kSha256BlockSize - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    i += take;
    if (buffered_ == kSha256BlockSize) {
      Compress(buffer_);
      buffered_ = 0;
    }
  }
  while (i + kSha256BlockSize <= data.size()) {
    Compress(data.data() + i);
    i += kSha256BlockSize;
  }
  if (i < data.size()) {
    std::memcpy(buffer_, data.data() + i, data.size() - i);
    buffered_ = data.size() - i;
  }
}

Sha256Digest Sha256::Finish() {
  uint64_t bit_length = length_ * 8;
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  uint8_t pad[kSha256BlockSize * 2] = {0x80};
  size_t pad_len = (buffered_ < 56) ? (56 - buffered_)
                                    : (kSha256BlockSize + 56 - buffered_);
  Update(ciobase::ByteSpan(pad, pad_len));
  uint8_t len_be[8];
  ciobase::StoreBe64(len_be, bit_length);
  Update(ciobase::ByteSpan(len_be, 8));

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    ciobase::StoreBe32(digest.data() + i * 4, state_[i]);
  }
  Reset();
  return digest;
}

Sha256Digest Sha256::Hash(ciobase::ByteSpan data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace ciocrypto
