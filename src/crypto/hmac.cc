#include "src/crypto/hmac.h"

#include <cstring>

namespace ciocrypto {

HmacSha256::HmacSha256(ciobase::ByteSpan key) {
  uint8_t block_key[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    Sha256Digest d = Sha256::Hash(key);
    std::memcpy(block_key, d.data(), d.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  uint8_t ipad_key[kSha256BlockSize];
  for (size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad_key[i] = static_cast<uint8_t>(block_key[i] ^ 0x36);
    opad_key_[i] = static_cast<uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.Update(ciobase::ByteSpan(ipad_key, kSha256BlockSize));
}

void HmacSha256::Update(ciobase::ByteSpan data) { inner_.Update(data); }

Sha256Digest HmacSha256::Finish() {
  Sha256Digest inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(ciobase::ByteSpan(opad_key_, kSha256BlockSize));
  outer.Update(inner_digest);
  return outer.Finish();
}

Sha256Digest HmacSha256::Mac(ciobase::ByteSpan key, ciobase::ByteSpan data) {
  HmacSha256 h(key);
  h.Update(data);
  return h.Finish();
}

bool HmacSha256::Verify(ciobase::ByteSpan key, ciobase::ByteSpan data,
                        ciobase::ByteSpan expected_mac) {
  Sha256Digest mac = Mac(key, data);
  return ciobase::ConstantTimeEqual(mac, expected_mac);
}

}  // namespace ciocrypto
