#include "src/crypto/hkdf.h"

#include <cassert>

namespace ciocrypto {

Sha256Digest HkdfExtract(ciobase::ByteSpan salt, ciobase::ByteSpan ikm) {
  // If salt is empty, RFC 5869 specifies a string of HashLen zeros.
  if (salt.empty()) {
    static constexpr uint8_t kZeros[kSha256DigestSize] = {0};
    return HmacSha256::Mac(ciobase::ByteSpan(kZeros, sizeof(kZeros)), ikm);
  }
  return HmacSha256::Mac(salt, ikm);
}

ciobase::Buffer HkdfExpand(ciobase::ByteSpan prk, ciobase::ByteSpan info,
                           size_t length) {
  assert(length <= 255 * kSha256DigestSize);
  ciobase::Buffer out;
  out.reserve(length);
  Sha256Digest t{};
  size_t t_len = 0;
  uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 h(prk);
    h.Update(ciobase::ByteSpan(t.data(), t_len));
    h.Update(info);
    h.Update(ciobase::ByteSpan(&counter, 1));
    t = h.Finish();
    t_len = t.size();
    size_t take = std::min(length - out.size(), t_len);
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

ciobase::Buffer HkdfExpandLabel(ciobase::ByteSpan secret,
                                std::string_view label,
                                ciobase::ByteSpan context, size_t length) {
  // struct { uint16 length; opaque label<7..255>; opaque context<0..255>; }
  ciobase::Buffer info;
  info.resize(2);
  ciobase::StoreBe16(info.data(), static_cast<uint16_t>(length));
  std::string full_label = "tls13 ";
  full_label += label;
  info.push_back(static_cast<uint8_t>(full_label.size()));
  ciobase::AppendString(info, full_label);
  info.push_back(static_cast<uint8_t>(context.size()));
  ciobase::Append(info, context);
  return HkdfExpand(secret, info, length);
}

}  // namespace ciocrypto
