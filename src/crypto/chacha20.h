// ChaCha20 stream cipher (RFC 8439 §2.4), from scratch.

#ifndef SRC_CRYPTO_CHACHA20_H_
#define SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/base/bytes.h"

namespace ciocrypto {

inline constexpr size_t kChaCha20KeySize = 32;
inline constexpr size_t kChaCha20NonceSize = 12;
inline constexpr size_t kChaCha20BlockSize = 64;

// Produces one 64-byte keystream block for (key, counter, nonce). This is the
// straightforward reference implementation; ChaCha20Xor uses a 4-block-wide
// fast path that must stay bit-identical to a per-block loop over this.
void ChaCha20Block(const uint8_t key[kChaCha20KeySize], uint32_t counter,
                   const uint8_t nonce[kChaCha20NonceSize],
                   uint8_t out[kChaCha20BlockSize]);

// XORs `in` with the keystream starting at block `initial_counter` into
// `out`. in and out may alias (in-place encryption). The state is initialized
// once per call; 4 keystream blocks are generated per inner-loop iteration
// and XORed word-wise, so bulk records never touch a byte-at-a-time loop.
void ChaCha20Xor(const uint8_t key[kChaCha20KeySize],
                 const uint8_t nonce[kChaCha20NonceSize],
                 uint32_t initial_counter, ciobase::ByteSpan in, uint8_t* out);

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_CHACHA20_H_
