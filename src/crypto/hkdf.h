// HKDF with SHA-256 (RFC 5869), plus the TLS 1.3 style HKDF-Expand-Label
// used by the ciotls key schedule.

#ifndef SRC_CRYPTO_HKDF_H_
#define SRC_CRYPTO_HKDF_H_

#include <string_view>

#include "src/crypto/hmac.h"

namespace ciocrypto {

// HKDF-Extract(salt, ikm) -> PRK.
Sha256Digest HkdfExtract(ciobase::ByteSpan salt, ciobase::ByteSpan ikm);

// HKDF-Expand(prk, info, length). length <= 255 * 32.
ciobase::Buffer HkdfExpand(ciobase::ByteSpan prk, ciobase::ByteSpan info,
                           size_t length);

// TLS 1.3's HKDF-Expand-Label(secret, label, context, length) with the
// "tls13 " label prefix (RFC 8446 §7.1).
ciobase::Buffer HkdfExpandLabel(ciobase::ByteSpan secret,
                                std::string_view label,
                                ciobase::ByteSpan context, size_t length);

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_HKDF_H_
