// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// This is the mandatory encryption layer of the paper's L5 boundary ("a
// mandatory TLS layer guarantees data integrity and confidentiality") and of
// the blockio encryption-at-rest path.

#ifndef SRC_CRYPTO_AEAD_H_
#define SRC_CRYPTO_AEAD_H_

#include "src/base/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"

namespace ciocrypto {

inline constexpr size_t kAeadKeySize = kChaCha20KeySize;    // 32
inline constexpr size_t kAeadNonceSize = kChaCha20NonceSize;  // 12
inline constexpr size_t kAeadTagSize = kPoly1305TagSize;    // 16

// Normalizes an arbitrary-length secret into a kAeadKeySize key: exact-size
// keys pass through verbatim (RFC vectors unchanged), anything else is
// hashed. The Aead* functions REQUIRE a kAeadKeySize key — components that
// accept caller-provided secrets must derive through this instead of handing
// a short buffer to the cipher (which would read past its end).
ciobase::Buffer DeriveAeadKey(ciobase::ByteSpan secret);

// Encrypts `plaintext` with `aad` authenticated; output is
// ciphertext || 16-byte tag.
ciobase::Buffer AeadSeal(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                         ciobase::ByteSpan aad, ciobase::ByteSpan plaintext);

// Appends ciphertext || tag to `out`, reusing its capacity (zero-allocation
// steady state for record-layer senders). `plaintext` and `aad` must not
// alias `out` (the resize may reallocate). Returns bytes appended.
size_t AeadSealInto(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                    ciobase::ByteSpan aad, ciobase::ByteSpan plaintext,
                    ciobase::Buffer& out);

// Seals directly into a caller-provided span (no allocation, no resize) —
// the sealed-buffer-pool path where records land in registered slots. `out`
// must hold at least plaintext.size() + kAeadTagSize bytes and must not
// alias `plaintext` or `aad`. Returns bytes written.
size_t AeadSealToSpan(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                      ciobase::ByteSpan aad, ciobase::ByteSpan plaintext,
                      ciobase::MutableByteSpan out);

// Opens ciphertext || tag. Returns kTampered if authentication fails.
ciobase::Result<ciobase::Buffer> AeadOpen(ciobase::ByteSpan key,
                                          ciobase::ByteSpan nonce,
                                          ciobase::ByteSpan aad,
                                          ciobase::ByteSpan sealed);

// Like AeadOpen but appends the plaintext to `out`, reusing its capacity.
// On tag mismatch `out` is left unchanged. `sealed` and `aad` must not alias
// `out`. Returns bytes appended.
ciobase::Result<size_t> AeadOpenInto(ciobase::ByteSpan key,
                                     ciobase::ByteSpan nonce,
                                     ciobase::ByteSpan aad,
                                     ciobase::ByteSpan sealed,
                                     ciobase::Buffer& out);

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_AEAD_H_
