// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// This is the mandatory encryption layer of the paper's L5 boundary ("a
// mandatory TLS layer guarantees data integrity and confidentiality") and of
// the blockio encryption-at-rest path.

#ifndef SRC_CRYPTO_AEAD_H_
#define SRC_CRYPTO_AEAD_H_

#include "src/base/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"

namespace ciocrypto {

inline constexpr size_t kAeadKeySize = kChaCha20KeySize;    // 32
inline constexpr size_t kAeadNonceSize = kChaCha20NonceSize;  // 12
inline constexpr size_t kAeadTagSize = kPoly1305TagSize;    // 16

// Encrypts `plaintext` with `aad` authenticated; output is
// ciphertext || 16-byte tag.
ciobase::Buffer AeadSeal(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                         ciobase::ByteSpan aad, ciobase::ByteSpan plaintext);

// Opens ciphertext || tag. Returns kTampered if authentication fails.
ciobase::Result<ciobase::Buffer> AeadOpen(ciobase::ByteSpan key,
                                          ciobase::ByteSpan nonce,
                                          ciobase::ByteSpan aad,
                                          ciobase::ByteSpan sealed);

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_AEAD_H_
