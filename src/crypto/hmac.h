// HMAC-SHA256 (RFC 2104). Used by the attestation report MAC and by HKDF.

#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/crypto/sha256.h"

namespace ciocrypto {

class HmacSha256 {
 public:
  explicit HmacSha256(ciobase::ByteSpan key);

  void Update(ciobase::ByteSpan data);
  Sha256Digest Finish();

  static Sha256Digest Mac(ciobase::ByteSpan key, ciobase::ByteSpan data);

  // Constant-time verification of a received MAC.
  static bool Verify(ciobase::ByteSpan key, ciobase::ByteSpan data,
                     ciobase::ByteSpan expected_mac);

 private:
  Sha256 inner_;
  uint8_t opad_key_[kSha256BlockSize];
};

}  // namespace ciocrypto

#endif  // SRC_CRYPTO_HMAC_H_
