#include "src/crypto/chacha20.h"

#include <cstring>

#include "src/base/bits.h"

namespace ciocrypto {

namespace {

using ciobase::RotL32;

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = RotL32(d, 16);
  c += d;
  b ^= c;
  b = RotL32(b, 12);
  a += b;
  d ^= a;
  d = RotL32(d, 8);
  c += d;
  b ^= c;
  b = RotL32(b, 7);
}

}  // namespace

void ChaCha20Block(const uint8_t key[kChaCha20KeySize], uint32_t counter,
                   const uint8_t nonce[kChaCha20NonceSize],
                   uint8_t out[kChaCha20BlockSize]) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = ciobase::LoadLe32(key + i * 4);
  }
  state[12] = counter;
  state[13] = ciobase::LoadLe32(nonce);
  state[14] = ciobase::LoadLe32(nonce + 4);
  state[15] = ciobase::LoadLe32(nonce + 8);

  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    ciobase::StoreLe32(out + i * 4, x[i] + state[i]);
  }
}

void ChaCha20Xor(const uint8_t key[kChaCha20KeySize],
                 const uint8_t nonce[kChaCha20NonceSize],
                 uint32_t initial_counter, ciobase::ByteSpan in, uint8_t* out) {
  uint8_t block[kChaCha20BlockSize];
  uint32_t counter = initial_counter;
  size_t i = 0;
  while (i < in.size()) {
    ChaCha20Block(key, counter++, nonce, block);
    size_t n = std::min(in.size() - i, kChaCha20BlockSize);
    for (size_t j = 0; j < n; ++j) {
      out[i + j] = static_cast<uint8_t>(in[i + j] ^ block[j]);
    }
    i += n;
  }
}

}  // namespace ciocrypto
