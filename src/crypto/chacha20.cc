#include "src/crypto/chacha20.h"

#include <cstring>

#include "src/base/bits.h"

namespace ciocrypto {

namespace {

using ciobase::RotL32;

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = RotL32(d, 16);
  c += d;
  b ^= c;
  b = RotL32(b, 12);
  a += b;
  d ^= a;
  d = RotL32(d, 8);
  c += d;
  b ^= c;
  b = RotL32(b, 7);
}

// Fills the 16-word ChaCha20 state for (key, counter, nonce). Done once per
// ChaCha20Xor call; only state[12] (the block counter) changes between blocks.
inline void InitState(uint32_t state[16], const uint8_t key[kChaCha20KeySize],
                      uint32_t counter,
                      const uint8_t nonce[kChaCha20NonceSize]) {
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = ciobase::LoadLe32(key + i * 4);
  }
  state[12] = counter;
  state[13] = ciobase::LoadLe32(nonce);
  state[14] = ciobase::LoadLe32(nonce + 4);
  state[15] = ciobase::LoadLe32(nonce + 8);
}

// One keystream block from an already-initialized state (state[12] = counter).
inline void BlockFromState(const uint32_t state[16],
                           uint8_t out[kChaCha20BlockSize]) {
  uint32_t x[16];
  std::memcpy(x, state, 16 * sizeof(uint32_t));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    ciobase::StoreLe32(out + i * 4, x[i] + state[i]);
  }
}

inline constexpr int kLanes = 4;

// One quarter-round across 4 independent blocks (SIMD-within-registers: each
// statement is a 4-wide lane loop the compiler can vectorize).
inline void QuarterRound4(uint32_t a[kLanes], uint32_t b[kLanes],
                          uint32_t c[kLanes], uint32_t d[kLanes]) {
  for (int l = 0; l < kLanes; ++l) {
    a[l] += b[l];
    d[l] = RotL32(d[l] ^ a[l], 16);
  }
  for (int l = 0; l < kLanes; ++l) {
    c[l] += d[l];
    b[l] = RotL32(b[l] ^ c[l], 12);
  }
  for (int l = 0; l < kLanes; ++l) {
    a[l] += b[l];
    d[l] = RotL32(d[l] ^ a[l], 8);
  }
  for (int l = 0; l < kLanes; ++l) {
    c[l] += d[l];
    b[l] = RotL32(b[l] ^ c[l], 7);
  }
}

// Generates 4 consecutive keystream blocks (counters counter..counter+3, each
// wrapping mod 2^32 independently, per RFC 8439's 32-bit block counter) into
// out[0..255]. Lane-major layout: v[word][lane].
inline void Blocks4(const uint32_t state[16], uint32_t counter,
                    uint8_t out[kLanes * kChaCha20BlockSize]) {
  uint32_t v[16][kLanes];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < kLanes; ++l) {
      v[i][l] = state[i];
    }
  }
  for (int l = 0; l < kLanes; ++l) {
    v[12][l] = counter + static_cast<uint32_t>(l);
  }
  for (int round = 0; round < 10; ++round) {
    QuarterRound4(v[0], v[4], v[8], v[12]);
    QuarterRound4(v[1], v[5], v[9], v[13]);
    QuarterRound4(v[2], v[6], v[10], v[14]);
    QuarterRound4(v[3], v[7], v[11], v[15]);
    QuarterRound4(v[0], v[5], v[10], v[15]);
    QuarterRound4(v[1], v[6], v[11], v[12]);
    QuarterRound4(v[2], v[7], v[8], v[13]);
    QuarterRound4(v[3], v[4], v[9], v[14]);
  }
  for (int l = 0; l < kLanes; ++l) {
    uint8_t* block = out + static_cast<size_t>(l) * kChaCha20BlockSize;
    for (int i = 0; i < 16; ++i) {
      uint32_t init = i == 12 ? counter + static_cast<uint32_t>(l) : state[i];
      ciobase::StoreLe32(block + i * 4, v[i][l] + init);
    }
  }
}

// XORs n bytes of keystream into out, 8 bytes at a time (memcpy keeps the
// word loads/stores alignment-safe; in and out may alias exactly).
inline void XorWords(const uint8_t* in, const uint8_t* keystream, uint8_t* out,
                     size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    uint64_t ks;
    std::memcpy(&word, in + i, 8);
    std::memcpy(&ks, keystream + i, 8);
    word ^= ks;
    std::memcpy(out + i, &word, 8);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint8_t>(in[i] ^ keystream[i]);
  }
}

}  // namespace

void ChaCha20Block(const uint8_t key[kChaCha20KeySize], uint32_t counter,
                   const uint8_t nonce[kChaCha20NonceSize],
                   uint8_t out[kChaCha20BlockSize]) {
  uint32_t state[16];
  InitState(state, key, counter, nonce);
  BlockFromState(state, out);
}

void ChaCha20Xor(const uint8_t key[kChaCha20KeySize],
                 const uint8_t nonce[kChaCha20NonceSize],
                 uint32_t initial_counter, ciobase::ByteSpan in, uint8_t* out) {
  constexpr size_t kStride = kLanes * kChaCha20BlockSize;  // 256
  uint32_t state[16];
  InitState(state, key, initial_counter, nonce);
  uint32_t counter = initial_counter;
  uint8_t keystream[kStride];
  size_t i = 0;
  while (in.size() - i >= kStride) {
    Blocks4(state, counter, keystream);
    XorWords(in.data() + i, keystream, out + i, kStride);
    counter += kLanes;  // wraps mod 2^32 like the per-block counter
    i += kStride;
  }
  while (i < in.size()) {
    state[12] = counter++;
    BlockFromState(state, keystream);
    size_t n = std::min(in.size() - i, kChaCha20BlockSize);
    XorWords(in.data() + i, keystream, out + i, n);
    i += n;
  }
}

}  // namespace ciocrypto
