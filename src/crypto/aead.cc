#include "src/crypto/aead.h"

#include <cassert>
#include <cstring>

#include "src/crypto/sha256.h"

namespace ciocrypto {

namespace {

// Computes the Poly1305 tag over aad/ciphertext with the one-time key derived
// from ChaCha20 block 0.
Poly1305Tag ComputeTag(const uint8_t key[kAeadKeySize],
                       const uint8_t nonce[kAeadNonceSize],
                       ciobase::ByteSpan aad, ciobase::ByteSpan ciphertext) {
  uint8_t block0[kChaCha20BlockSize];
  ChaCha20Block(key, 0, nonce, block0);

  Poly1305 mac(block0);  // first 32 bytes of block 0 are the one-time key
  static constexpr uint8_t kZeroPad[16] = {0};

  mac.Update(aad);
  if (aad.size() % 16 != 0) {
    mac.Update(ciobase::ByteSpan(kZeroPad, 16 - aad.size() % 16));
  }
  mac.Update(ciphertext);
  if (ciphertext.size() % 16 != 0) {
    mac.Update(ciobase::ByteSpan(kZeroPad, 16 - ciphertext.size() % 16));
  }
  uint8_t lengths[16];
  ciobase::StoreLe64(lengths, aad.size());
  ciobase::StoreLe64(lengths + 8, ciphertext.size());
  mac.Update(ciobase::ByteSpan(lengths, 16));
  return mac.Finish();
}

}  // namespace

ciobase::Buffer DeriveAeadKey(ciobase::ByteSpan secret) {
  if (secret.size() == kAeadKeySize) {
    return ciobase::Buffer(secret.begin(), secret.end());
  }
  Sha256Digest digest = Sha256::Hash(secret);
  return ciobase::Buffer(digest.begin(), digest.end());
}

ciobase::Buffer AeadSeal(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                         ciobase::ByteSpan aad, ciobase::ByteSpan plaintext) {
  assert(key.size() == kAeadKeySize);
  assert(nonce.size() == kAeadNonceSize);
  ciobase::Buffer out(plaintext.size() + kAeadTagSize);
  ChaCha20Xor(key.data(), nonce.data(), 1, plaintext, out.data());
  Poly1305Tag tag =
      ComputeTag(key.data(), nonce.data(), aad,
                 ciobase::ByteSpan(out.data(), plaintext.size()));
  std::memcpy(out.data() + plaintext.size(), tag.data(), kAeadTagSize);
  return out;
}

size_t AeadSealInto(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                    ciobase::ByteSpan aad, ciobase::ByteSpan plaintext,
                    ciobase::Buffer& out) {
  assert(key.size() == kAeadKeySize);
  assert(nonce.size() == kAeadNonceSize);
  size_t base = out.size();
  out.resize(base + plaintext.size() + kAeadTagSize);
  ChaCha20Xor(key.data(), nonce.data(), 1, plaintext, out.data() + base);
  Poly1305Tag tag =
      ComputeTag(key.data(), nonce.data(), aad,
                 ciobase::ByteSpan(out.data() + base, plaintext.size()));
  std::memcpy(out.data() + base + plaintext.size(), tag.data(), kAeadTagSize);
  return plaintext.size() + kAeadTagSize;
}

size_t AeadSealToSpan(ciobase::ByteSpan key, ciobase::ByteSpan nonce,
                      ciobase::ByteSpan aad, ciobase::ByteSpan plaintext,
                      ciobase::MutableByteSpan out) {
  assert(key.size() == kAeadKeySize);
  assert(nonce.size() == kAeadNonceSize);
  assert(out.size() >= plaintext.size() + kAeadTagSize);
  ChaCha20Xor(key.data(), nonce.data(), 1, plaintext, out.data());
  Poly1305Tag tag =
      ComputeTag(key.data(), nonce.data(), aad,
                 ciobase::ByteSpan(out.data(), plaintext.size()));
  std::memcpy(out.data() + plaintext.size(), tag.data(), kAeadTagSize);
  return plaintext.size() + kAeadTagSize;
}

ciobase::Result<ciobase::Buffer> AeadOpen(ciobase::ByteSpan key,
                                          ciobase::ByteSpan nonce,
                                          ciobase::ByteSpan aad,
                                          ciobase::ByteSpan sealed) {
  assert(key.size() == kAeadKeySize);
  assert(nonce.size() == kAeadNonceSize);
  if (sealed.size() < kAeadTagSize) {
    return ciobase::Tampered("AEAD input shorter than tag");
  }
  ciobase::ByteSpan ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  ciobase::ByteSpan received_tag = sealed.last(kAeadTagSize);
  Poly1305Tag tag = ComputeTag(key.data(), nonce.data(), aad, ciphertext);
  if (!ciobase::ConstantTimeEqual(tag, received_tag)) {
    return ciobase::Tampered("AEAD tag mismatch");
  }
  ciobase::Buffer plaintext(ciphertext.size());
  ChaCha20Xor(key.data(), nonce.data(), 1, ciphertext, plaintext.data());
  return plaintext;
}

ciobase::Result<size_t> AeadOpenInto(ciobase::ByteSpan key,
                                     ciobase::ByteSpan nonce,
                                     ciobase::ByteSpan aad,
                                     ciobase::ByteSpan sealed,
                                     ciobase::Buffer& out) {
  assert(key.size() == kAeadKeySize);
  assert(nonce.size() == kAeadNonceSize);
  if (sealed.size() < kAeadTagSize) {
    return ciobase::Tampered("AEAD input shorter than tag");
  }
  ciobase::ByteSpan ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  ciobase::ByteSpan received_tag = sealed.last(kAeadTagSize);
  Poly1305Tag tag = ComputeTag(key.data(), nonce.data(), aad, ciphertext);
  if (!ciobase::ConstantTimeEqual(tag, received_tag)) {
    return ciobase::Tampered("AEAD tag mismatch");
  }
  size_t base = out.size();
  out.resize(base + ciphertext.size());
  ChaCha20Xor(key.data(), nonce.data(), 1, ciphertext, out.data() + base);
  return ciphertext.size();
}

}  // namespace ciocrypto
