#include "src/study/classifier.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace ciostudy {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ContainsAny(const std::string& haystack,
                 std::initializer_list<const char*> needles) {
  for (const char* needle : needles) {
    if (haystack.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

HardeningCategory ClassifySubject(std::string_view subject) {
  std::string s = Lower(subject);
  // Amendments first: a revert of a validation commit is an amendment.
  if (ContainsAny(s, {"revert", "fix up", "again)", "regression",
                      "false positive", "relax"})) {
    return HardeningCategory::kAmendPrevious;
  }
  if (ContainsAny(s, {"race", "barrier", "concurrent", "lock"})) {
    return HardeningCategory::kRaceProtection;
  }
  if (ContainsAny(s, {"copy", "bounce", "swiotlb", "snapshot"})) {
    return HardeningCategory::kAddCopies;
  }
  if (ContainsAny(s, {"zero", "initial", "uninitialized", "clear "})) {
    return HardeningCategory::kAddInit;
  }
  if (ContainsAny(s, {"disable", "restrict", "refuse", "forbid"})) {
    return HardeningCategory::kRestrictFeatures;
  }
  if (ContainsAny(s, {"rework", "redesign", "refactor", "rewrite"})) {
    return HardeningCategory::kDesignChange;
  }
  if (ContainsAny(s, {"validat", "check", "sanity", "bounds", "detect",
                      "reject"})) {
    return HardeningCategory::kAddChecks;
  }
  // Default bucket: checks are the most common hardening change.
  return HardeningCategory::kAddChecks;
}

Distribution DistributionByLabel(const std::vector<HardeningCommit>& commits) {
  Distribution distribution;
  for (const auto& commit : commits) {
    ++distribution.counts[static_cast<int>(commit.label)];
    ++distribution.total;
  }
  return distribution;
}

Distribution DistributionByClassifier(
    const std::vector<HardeningCommit>& commits) {
  Distribution distribution;
  for (const auto& commit : commits) {
    ++distribution.counts[static_cast<int>(ClassifySubject(commit.subject))];
    ++distribution.total;
  }
  return distribution;
}

double ClassifierAccuracy(const std::vector<HardeningCommit>& commits) {
  if (commits.empty()) {
    return 1.0;
  }
  int agree = 0;
  for (const auto& commit : commits) {
    if (ClassifySubject(commit.subject) == commit.label) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(commits.size());
}

std::string DistributionTable(const std::string& title,
                              const Distribution& distribution) {
  std::string out = title + " (" + std::to_string(distribution.total) +
                    " commits; %: proportionally to all changes)\n";
  char line[160];
  // Sort categories by count, descending, like the figures.
  std::array<int, kHardeningCategoryCount> order;
  for (int i = 0; i < kHardeningCategoryCount; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return distribution.counts[a] > distribution.counts[b];
  });
  for (int index : order) {
    auto category = static_cast<HardeningCategory>(index);
    double percent = distribution.Percent(category);
    int bar = static_cast<int>(percent / 2.0 + 0.5);
    std::snprintf(line, sizeof(line), "  %-18s %3d  %5.1f%%  |%s\n",
                  std::string(HardeningCategoryName(category)).c_str(),
                  distribution.counts[index], percent,
                  std::string(static_cast<size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

std::string CveTable() {
  std::string out =
      "Remotely-exploitable CVEs in the Linux /net subsystem per year\n"
      "(reconstructed series; see DESIGN.md substitutions)\n";
  char line[160];
  for (const auto& [year, count] : NetRemoteCves()) {
    std::snprintf(line, sizeof(line), "  %d  %3d  |%s\n", year, count,
                  std::string(static_cast<size_t>(count), '#').c_str());
    out += line;
  }
  return out;
}

std::string GrowthTable() {
  std::string out = "/net subsystem size by kernel version (KLoC)\n";
  char line[160];
  const auto& growth = NetSubsystemGrowth();
  for (size_t i = 0; i < growth.size(); ++i) {
    double delta =
        i == 0 ? 0.0
               : 100.0 * (growth[i].kloc - growth[i - 1].kloc) /
                     growth[i - 1].kloc;
    std::snprintf(line, sizeof(line), "  %-8s %5d KLoC  %+5.1f%%\n",
                  growth[i].version, growth[i].kloc, delta);
    out += line;
  }
  return out;
}

}  // namespace ciostudy
