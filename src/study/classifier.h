// Keyword classifier and distribution tables for the hardening-commit study
// (§2.5, Figures 3 and 4).
//
// The paper classified each merged hardening commit by hand into seven
// categories. This module reproduces the *pipeline*: a keyword classifier
// over changelog subjects (validated against the ground-truth labels in the
// dataset), distribution computation, and the bar-chart-as-table printers
// used by bench/fig3_netvsc_hardening and bench/fig4_virtio_hardening.

#ifndef SRC_STUDY_CLASSIFIER_H_
#define SRC_STUDY_CLASSIFIER_H_

#include <array>
#include <string>

#include "src/study/dataset.h"

namespace ciostudy {

// Classifies one changelog subject. Precedence matters (a "Revert" of a
// check-adding commit is an amendment, not a check).
HardeningCategory ClassifySubject(std::string_view subject);

struct Distribution {
  std::array<int, kHardeningCategoryCount> counts{};
  int total = 0;

  double Percent(HardeningCategory category) const {
    return total == 0 ? 0.0
                      : 100.0 * counts[static_cast<int>(category)] / total;
  }
};

// Distribution by manual ground-truth label.
Distribution DistributionByLabel(const std::vector<HardeningCommit>& commits);
// Distribution by the automatic classifier.
Distribution DistributionByClassifier(
    const std::vector<HardeningCommit>& commits);

// Fraction of commits where the classifier agrees with the label.
double ClassifierAccuracy(const std::vector<HardeningCommit>& commits);

// ASCII rendering of a distribution as a horizontal bar chart with
// percentages, in the style of Figures 3/4.
std::string DistributionTable(const std::string& title,
                              const Distribution& distribution);

// ASCII rendering of the Figure 2 CVE series.
std::string CveTable();

// The "+20% LoC per major version" growth table.
std::string GrowthTable();

}  // namespace ciostudy

#endif  // SRC_STUDY_CLASSIFIER_H_
