// Embedded datasets for the paper's empirical study (§2.4–§2.5,
// Figures 2–4).
//
// The paper's raw data lives at github.com/hlef/cio-hotos23-data; this
// repository is built offline, so the datasets here are *reconstructions*
// calibrated to every number the paper prints:
//
//   Figure 2 — remotely-exploitable CVEs in Linux /net per year, 2002–2022
//              ("remains widely affected by remotely-exploitable
//              vulnerabilities"); yearly counts are approximate, the rising
//              trend and absence-of-zero-years are preserved.
//   Figure 3 — 28 netvsc hardening commits: checks 21%, init 18%, copies /
//              races / restrict 14% each, design 11%, amend 7%.
//   Figure 4 — 43 virtio hardening commits: checks ~35%, amend/revert ~28%
//              ("over 40 commits, 12 either revert or amend previous
//              hardening changes"), design ~14%, races ~9%, restrict ~7%,
//              copies ~5%, init ~2%.
//
// Commit subjects are written in kernel-changelog style so that the keyword
// classifier (classifier.h) is exercised on realistic text; each commit
// also carries its ground-truth label, mirroring the paper's manual
// classification.

#ifndef SRC_STUDY_DATASET_H_
#define SRC_STUDY_DATASET_H_

#include <string>
#include <vector>

namespace ciostudy {

// The seven hardening-commit categories of Figures 3 and 4.
enum class HardeningCategory {
  kAddChecks = 0,
  kAddInit = 1,
  kAddCopies = 2,
  kRaceProtection = 3,
  kRestrictFeatures = 4,
  kDesignChange = 5,
  kAmendPrevious = 6,
};
inline constexpr int kHardeningCategoryCount = 7;

std::string_view HardeningCategoryName(HardeningCategory category);

struct HardeningCommit {
  std::string driver;   // "netvsc" or "virtio"
  std::string subject;  // changelog-style one-liner
  HardeningCategory label;  // manual ground truth
};

// 28 commits, distribution matching Figure 3.
const std::vector<HardeningCommit>& NetvscCommits();
// 43 commits, distribution matching Figure 4.
const std::vector<HardeningCommit>& VirtioCommits();

struct CveYear {
  int year;
  int remote_cves;
};

// Figure 2 series (2002–2022); reconstructed counts.
const std::vector<CveYear>& NetRemoteCves();

struct NetLocVersion {
  const char* version;
  int kloc;  // non-blank lines in /net, thousands
};

// The "+20% LoC per major version" growth series the paper cites.
const std::vector<NetLocVersion>& NetSubsystemGrowth();

}  // namespace ciostudy

#endif  // SRC_STUDY_DATASET_H_
