#include "src/study/dataset.h"

namespace ciostudy {

std::string_view HardeningCategoryName(HardeningCategory category) {
  switch (category) {
    case HardeningCategory::kAddChecks:
      return "add-checks";
    case HardeningCategory::kAddInit:
      return "add-init";
    case HardeningCategory::kAddCopies:
      return "add-copies";
    case HardeningCategory::kRaceProtection:
      return "race-protection";
    case HardeningCategory::kRestrictFeatures:
      return "restrict-features";
    case HardeningCategory::kDesignChange:
      return "design-change";
    case HardeningCategory::kAmendPrevious:
      return "amend-previous";
  }
  return "?";
}

namespace {
using HC = HardeningCategory;
}  // namespace

const std::vector<HardeningCommit>& NetvscCommits() {
  static const std::vector<HardeningCommit> commits = {
      // add-checks: 6 (21%)
      {"netvsc", "hv_netvsc: Add validation for untrusted Hyper-V values",
       HC::kAddChecks},
      {"netvsc", "hv_netvsc: validate packet offset and length on receive",
       HC::kAddChecks},
      {"netvsc", "hv_netvsc: check rndis message size before use",
       HC::kAddChecks},
      {"netvsc", "hv_netvsc: add bounds check on send indirection table",
       HC::kAddChecks},
      {"netvsc", "hv_netvsc: validate channel count from host",
       HC::kAddChecks},
      {"netvsc", "hv_netvsc: check vmbus packet type against expected set",
       HC::kAddChecks},
      // add-init: 5 (18%)
      {"netvsc", "hv_netvsc: zero-initialize receive completion data",
       HC::kAddInit},
      {"netvsc", "hv_netvsc: initialize all rndis request fields",
       HC::kAddInit},
      {"netvsc", "hv_netvsc: clear uninitialized padding before sending",
       HC::kAddInit},
      {"netvsc", "hv_netvsc: zero the vmbus ring buffer at setup",
       HC::kAddInit},
      {"netvsc", "hv_netvsc: initialize per-channel state before offering",
       HC::kAddInit},
      // add-copies: 4 (14%)
      {"netvsc", "hv_netvsc: copy rndis header out of ring before parsing",
       HC::kAddCopies},
      {"netvsc", "hv_netvsc: use bounce buffer for control messages",
       HC::kAddCopies},
      {"netvsc", "hv_netvsc: copy completion status to private memory",
       HC::kAddCopies},
      {"netvsc", "hv_netvsc: snapshot indirection table via local copy",
       HC::kAddCopies},
      // race-protection: 4 (14%)
      {"netvsc", "hv_netvsc: fix race between channel open and receive",
       HC::kRaceProtection},
      {"netvsc", "hv_netvsc: add memory barrier before reading ring index",
       HC::kRaceProtection},
      {"netvsc", "hv_netvsc: protect subchannel teardown with lock",
       HC::kRaceProtection},
      {"netvsc", "hv_netvsc: avoid concurrent access to completion ring",
       HC::kRaceProtection},
      // restrict-features: 4 (14%)
      {"netvsc", "hv_netvsc: disable NVSP protocol versions below 5",
       HC::kRestrictFeatures},
      {"netvsc", "hv_netvsc: restrict RSS configuration from the host",
       HC::kRestrictFeatures},
      {"netvsc", "hv_netvsc: refuse oversized host-offered MTU",
       HC::kRestrictFeatures},
      {"netvsc", "hv_netvsc: disable TCP offloads under confidential VM",
       HC::kRestrictFeatures},
      // design-change: 3 (11%)
      {"netvsc", "hv_netvsc: rework receive path to parse private copies",
       HC::kDesignChange},
      {"netvsc", "hv_netvsc: redesign completion handling state machine",
       HC::kDesignChange},
      {"netvsc", "hv_netvsc: refactor ring accessors behind safe helpers",
       HC::kDesignChange},
      // amend-previous: 2 (7%)
      {"netvsc", "Revert \"hv_netvsc: validate channel count from host\"",
       HC::kAmendPrevious},
      {"netvsc", "hv_netvsc: fix up earlier offset validation (again)",
       HC::kAmendPrevious},
  };
  return commits;
}

const std::vector<HardeningCommit>& VirtioCommits() {
  static const std::vector<HardeningCommit> commits = {
      // add-checks: 15 (35%)
      {"virtio", "virtio_ring: validate used buffer length", HC::kAddChecks},
      {"virtio", "virtio_net: check descriptor chain length against queue",
       HC::kAddChecks},
      {"virtio", "virtio_ring: check next index before chaining",
       HC::kAddChecks},
      {"virtio", "virtio: sanity check device config space accesses",
       HC::kAddChecks},
      {"virtio_net", "virtio_net: validate header gso_size from device",
       HC::kAddChecks},
      {"virtio", "virtio_ring: bounds check indirect descriptor table",
       HC::kAddChecks},
      {"virtio", "virtio_ring: validate id in used ring against inflight",
       HC::kAddChecks},
      {"virtio", "virtio_net: check mergeable buffer count before use",
       HC::kAddChecks},
      {"virtio", "virtio_blk: validate status byte offset in completion",
       HC::kAddChecks},
      {"virtio", "virtio: check feature bits fit the negotiated set",
       HC::kAddChecks},
      {"virtio", "virtio_ring: detect and reject looping descriptor chains",
       HC::kAddChecks},
      {"virtio", "virtio_net: validate MTU offered by the device",
       HC::kAddChecks},
      {"virtio", "virtio_console: check port id before dereference",
       HC::kAddChecks},
      {"virtio", "virtio_ring: validate avail index progression",
       HC::kAddChecks},
      {"virtio", "virtio_9p: sanity check response tag from device",
       HC::kAddChecks},
      // amend-previous: 12 (28%)
      {"virtio", "Revert \"virtio_ring: validate used buffer length\"",
       HC::kAmendPrevious},
      {"virtio", "Revert \"virtio_net: validate header gso_size from device\"",
       HC::kAmendPrevious},
      {"virtio", "virtio_ring: fix up used length validation (again)",
       HC::kAmendPrevious},
      {"virtio", "virtio_net: fix regression from chain length check",
       HC::kAmendPrevious},
      {"virtio", "Revert \"virtio_ring: detect and reject looping chains\"",
       HC::kAmendPrevious},
      {"virtio", "virtio: fix up config space access checking for legacy",
       HC::kAmendPrevious},
      {"virtio", "virtio_ring: relax id validation broken for ballooning",
       HC::kAmendPrevious},
      {"virtio", "virtio_blk: fix up completion status offset check",
       HC::kAmendPrevious},
      {"virtio", "Revert \"virtio: check feature bits fit negotiated set\"",
       HC::kAmendPrevious},
      {"virtio", "virtio_net: fix up MTU validation for legacy devices",
       HC::kAmendPrevious},
      {"virtio", "virtio_ring: fix avail index validation false positives",
       HC::kAmendPrevious},
      {"virtio", "virtio: fix up harden-config regression on s390",
       HC::kAmendPrevious},
      // design-change: 6 (14%)
      {"virtio", "virtio_ring: rework descriptor handling around local state",
       HC::kDesignChange},
      {"virtio", "virtio_net: redesign receive buffer management",
       HC::kDesignChange},
      {"virtio", "virtio: refactor transport hardening into core helpers",
       HC::kDesignChange},
      {"virtio", "virtio_ring: rework packed ring reuse of inflight state",
       HC::kDesignChange},
      {"virtio", "virtio: rewrite feature negotiation around a fixed order",
       HC::kDesignChange},
      {"virtio", "virtio_ring: refactor used-ring processing loop",
       HC::kDesignChange},
      // race-protection: 4 (9%)
      {"virtio", "virtio_ring: fix race on device writable flags",
       HC::kRaceProtection},
      {"virtio", "virtio_net: add barrier between avail write and kick",
       HC::kRaceProtection},
      {"virtio", "virtio: protect config generation read with retry lock",
       HC::kRaceProtection},
      {"virtio", "virtio_console: fix concurrent port add/remove race",
       HC::kRaceProtection},
      // restrict-features: 3 (7%)
      {"virtio", "virtio: disable indirect descriptors for untrusted devices",
       HC::kRestrictFeatures},
      {"virtio", "virtio_net: restrict offloads under confidential guest",
       HC::kRestrictFeatures},
      {"virtio", "virtio: refuse legacy (pre-1.0) devices when hardened",
       HC::kRestrictFeatures},
      // add-copies: 2 (5%)
      {"virtio", "virtio_ring: copy descriptors to cache before validation",
       HC::kAddCopies},
      {"virtio", "virtio_net: use swiotlb bounce for control virtqueue",
       HC::kAddCopies},
      // add-init: 1 (2%)
      {"virtio", "virtio_ring: zero-initialize extra state on allocation",
       HC::kAddInit},
  };
  return commits;
}

const std::vector<CveYear>& NetRemoteCves() {
  static const std::vector<CveYear> series = {
      {2002, 2},  {2003, 1}, {2004, 3},  {2005, 4},  {2006, 3},  {2007, 2},
      {2008, 3},  {2009, 5}, {2010, 6},  {2011, 4},  {2012, 3},  {2013, 5},
      {2014, 6},  {2015, 5}, {2016, 8},  {2017, 11}, {2018, 7},  {2019, 9},
      {2020, 8},  {2021, 12}, {2022, 14},
  };
  return series;
}

const std::vector<NetLocVersion>& NetSubsystemGrowth() {
  static const std::vector<NetLocVersion> growth = {
      {"v4.0", 680}, {"v4.10", 790}, {"v4.20", 910}, {"v5.0, ", 940},
      {"v5.10", 1080}, {"v5.19", 1210}, {"v6.0", 1260},
  };
  return growth;
}

}  // namespace ciostudy
