#include "src/tls/record.h"

#include <algorithm>
#include <cstring>

namespace ciotls {

ciobase::Buffer FramePlaintextRecord(RecordType type,
                                     ciobase::ByteSpan payload) {
  ciobase::Buffer out;
  out.push_back(static_cast<uint8_t>(type));
  out.resize(kRecordHeaderSize);
  ciobase::StoreBe16(out.data() + 1, kRecordVersion);
  ciobase::StoreBe16(out.data() + 3, static_cast<uint16_t>(payload.size()));
  ciobase::Append(out, payload);
  return out;
}

SealingKey::SealingKey(ciobase::ByteSpan key, ciobase::ByteSpan iv)
    : valid_(true),
      key_(key.begin(), key.end()),
      iv_(iv.begin(), iv.end()) {}

void SealingKey::NonceForSeq(uint64_t seq,
                             uint8_t out[ciocrypto::kAeadNonceSize]) const {
  std::memcpy(out, iv_.data(), ciocrypto::kAeadNonceSize);
  uint8_t seq_be[8];
  ciobase::StoreBe64(seq_be, seq);
  for (int i = 0; i < 8; ++i) {
    out[ciocrypto::kAeadNonceSize - 8 + i] ^= seq_be[i];
  }
}

void SealingKey::SealInto(RecordType type, ciobase::ByteSpan plaintext,
                          ciobase::Buffer& out) {
  uint8_t header[kRecordHeaderSize];
  header[0] = static_cast<uint8_t>(type);
  ciobase::StoreBe16(header + 1, kRecordVersion);
  ciobase::StoreBe16(header + 3, static_cast<uint16_t>(
                                     plaintext.size() +
                                     ciocrypto::kAeadTagSize));
  uint8_t nonce[ciocrypto::kAeadNonceSize];
  NonceForSeq(seq_++, nonce);
  ciobase::Append(out, ciobase::ByteSpan(header, kRecordHeaderSize));
  ciocrypto::AeadSealInto(key_, ciobase::ByteSpan(nonce, sizeof(nonce)),
                          ciobase::ByteSpan(header, kRecordHeaderSize),
                          plaintext, out);
}

size_t SealingKey::SealToSpan(RecordType type, ciobase::ByteSpan plaintext,
                              ciobase::MutableByteSpan out) {
  uint8_t header[kRecordHeaderSize];
  header[0] = static_cast<uint8_t>(type);
  ciobase::StoreBe16(header + 1, kRecordVersion);
  ciobase::StoreBe16(header + 3, static_cast<uint16_t>(
                                     plaintext.size() +
                                     ciocrypto::kAeadTagSize));
  uint8_t nonce[ciocrypto::kAeadNonceSize];
  NonceForSeq(seq_++, nonce);
  std::memcpy(out.data(), header, kRecordHeaderSize);
  size_t sealed = ciocrypto::AeadSealToSpan(
      key_, ciobase::ByteSpan(nonce, sizeof(nonce)),
      ciobase::ByteSpan(header, kRecordHeaderSize), plaintext,
      out.subspan(kRecordHeaderSize));
  return kRecordHeaderSize + sealed;
}

ciobase::Buffer SealingKey::Seal(RecordType type, ciobase::ByteSpan plaintext) {
  ciobase::Buffer out;
  SealInto(type, plaintext, out);
  return out;
}

ciobase::Result<ciobase::Buffer> SealingKey::Open(RecordType type,
                                                  ciobase::ByteSpan body) {
  uint8_t header[kRecordHeaderSize];
  header[0] = static_cast<uint8_t>(type);
  ciobase::StoreBe16(header + 1, kRecordVersion);
  ciobase::StoreBe16(header + 3, static_cast<uint16_t>(body.size()));
  uint8_t nonce[ciocrypto::kAeadNonceSize];
  NonceForSeq(seq_, nonce);
  auto opened = ciocrypto::AeadOpen(
      key_, ciobase::ByteSpan(nonce, sizeof(nonce)),
      ciobase::ByteSpan(header, kRecordHeaderSize), body);
  if (!opened.ok()) {
    // Sequence stays put: a replayed/reordered/corrupted record must not
    // desynchronize the direction; the session treats this as fatal anyway.
    return opened.status();
  }
  ++seq_;
  return opened;
}

void RecordReader::Feed(ciobase::ByteSpan bytes) {
  if (head_ == buffer_.size()) {
    // Everything consumed: restart at the front, keeping the capacity.
    buffer_.clear();
    head_ = 0;
  } else if (head_ >= kMaxRecordPayload) {
    // Large consumed prefix: compact so the buffer stays bounded by the
    // unconsumed bytes plus one record's worth of slack.
    buffer_.erase(buffer_.begin(), buffer_.begin() + head_);
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

ciobase::Result<Record> RecordReader::Next() {
  size_t available = buffer_.size() - head_;
  if (available < kRecordHeaderSize) {
    return ciobase::Unavailable("incomplete header");
  }
  const uint8_t* p = buffer_.data() + head_;
  uint8_t type = p[0];
  uint16_t version = ciobase::LoadBe16(p + 1);
  uint16_t length = ciobase::LoadBe16(p + 3);
  if (version != kRecordVersion) {
    return ciobase::Tampered("bad record version");
  }
  if (type < static_cast<uint8_t>(RecordType::kAlert) ||
      type > static_cast<uint8_t>(RecordType::kKeyUpdate)) {
    return ciobase::Tampered("unknown record type");
  }
  if (length > kMaxRecordPayload + ciocrypto::kAeadTagSize) {
    return ciobase::Tampered("record too large");
  }
  if (available < kRecordHeaderSize + length) {
    return ciobase::Unavailable("incomplete record");
  }
  Record record;
  record.type = static_cast<RecordType>(type);
  record.payload.assign(p + kRecordHeaderSize,
                        p + kRecordHeaderSize + length);
  head_ += kRecordHeaderSize + length;
  return record;
}

}  // namespace ciotls
