#include "src/tls/record.h"

#include <algorithm>

namespace ciotls {

ciobase::Buffer FramePlaintextRecord(RecordType type,
                                     ciobase::ByteSpan payload) {
  ciobase::Buffer out;
  out.push_back(static_cast<uint8_t>(type));
  out.resize(kRecordHeaderSize);
  ciobase::StoreBe16(out.data() + 1, kRecordVersion);
  ciobase::StoreBe16(out.data() + 3, static_cast<uint16_t>(payload.size()));
  ciobase::Append(out, payload);
  return out;
}

SealingKey::SealingKey(ciobase::ByteSpan key, ciobase::ByteSpan iv)
    : valid_(true),
      key_(key.begin(), key.end()),
      iv_(iv.begin(), iv.end()) {}

ciobase::Buffer SealingKey::NonceForSeq(uint64_t seq) const {
  ciobase::Buffer nonce = iv_;
  uint8_t seq_be[8];
  ciobase::StoreBe64(seq_be, seq);
  for (int i = 0; i < 8; ++i) {
    nonce[nonce.size() - 8 + i] ^= seq_be[i];
  }
  return nonce;
}

ciobase::Buffer SealingKey::Seal(RecordType type, ciobase::ByteSpan plaintext) {
  uint8_t header[kRecordHeaderSize];
  header[0] = static_cast<uint8_t>(type);
  ciobase::StoreBe16(header + 1, kRecordVersion);
  ciobase::StoreBe16(header + 3, static_cast<uint16_t>(
                                     plaintext.size() +
                                     ciocrypto::kAeadTagSize));
  ciobase::Buffer nonce = NonceForSeq(seq_++);
  ciobase::Buffer sealed = ciocrypto::AeadSeal(
      key_, nonce, ciobase::ByteSpan(header, kRecordHeaderSize), plaintext);
  ciobase::Buffer out(header, header + kRecordHeaderSize);
  ciobase::Append(out, sealed);
  return out;
}

ciobase::Result<ciobase::Buffer> SealingKey::Open(RecordType type,
                                                  ciobase::ByteSpan body) {
  uint8_t header[kRecordHeaderSize];
  header[0] = static_cast<uint8_t>(type);
  ciobase::StoreBe16(header + 1, kRecordVersion);
  ciobase::StoreBe16(header + 3, static_cast<uint16_t>(body.size()));
  ciobase::Buffer nonce = NonceForSeq(seq_);
  auto opened = ciocrypto::AeadOpen(
      key_, nonce, ciobase::ByteSpan(header, kRecordHeaderSize), body);
  if (!opened.ok()) {
    // Sequence stays put: a replayed/reordered/corrupted record must not
    // desynchronize the direction; the session treats this as fatal anyway.
    return opened.status();
  }
  ++seq_;
  return opened;
}

void RecordReader::Feed(ciobase::ByteSpan bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

ciobase::Result<Record> RecordReader::Next() {
  if (buffer_.size() < kRecordHeaderSize) {
    return ciobase::Unavailable("incomplete header");
  }
  uint8_t type = buffer_[0];
  uint16_t version = static_cast<uint16_t>(
      static_cast<uint16_t>(buffer_[1]) << 8 | buffer_[2]);
  uint16_t length = static_cast<uint16_t>(
      static_cast<uint16_t>(buffer_[3]) << 8 | buffer_[4]);
  if (version != kRecordVersion) {
    return ciobase::Tampered("bad record version");
  }
  if (type < static_cast<uint8_t>(RecordType::kAlert) ||
      type > static_cast<uint8_t>(RecordType::kKeyUpdate)) {
    return ciobase::Tampered("unknown record type");
  }
  if (length > kMaxRecordPayload + ciocrypto::kAeadTagSize) {
    return ciobase::Tampered("record too large");
  }
  if (buffer_.size() < kRecordHeaderSize + length) {
    return ciobase::Unavailable("incomplete record");
  }
  Record record;
  record.type = static_cast<RecordType>(type);
  record.payload.assign(buffer_.begin() + kRecordHeaderSize,
                        buffer_.begin() + kRecordHeaderSize + length);
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + kRecordHeaderSize + length);
  return record;
}

}  // namespace ciotls
