// TlsSession: a PSK handshake and protected-session state machine in the
// style of TLS 1.3 (RFC 8446), over any reliable byte stream.
//
// The pre-shared key stands in for the attestation-bound secret: in the
// confidential-I/O deployment the peers derive it after verifying each
// other's attestation reports (see ciotee::AttestationAuthority), so a
// successful handshake transitively proves the peer runs the expected
// measured code.
//
// Handshake (both flights as plaintext handshake records, finished MACs
// keyed from the schedule):
//   C -> S : ClientHello  { client_random, psk_id }
//   S -> C : ServerHello  { server_random }
//   C -> S : Finished     { HMAC(client_finished_key, transcript) }
//   S -> C : Finished     { HMAC(server_finished_key, transcript) }
//
// Key schedule (HKDF-SHA256, labels via HkdfExpandLabel):
//   early    = Extract(0, psk)
//   derived  = ExpandLabel(early, "derived", "", 32)
//   master   = Extract(derived, transcript_hash)
//   c_secret = ExpandLabel(master, "c ap traffic", transcript, 32)
//   s_secret = ExpandLabel(master, "s ap traffic", transcript, 32)
//   per-direction key/iv = ExpandLabel(secret, "key"/"iv", "", 32/12)
//
// KeyUpdate records rotate a direction's secret forward
// (ExpandLabel(secret, "traffic upd", "", 32)), giving forward secrecy
// across updates.
//
// Usage: construct, then repeatedly exchange bytes — TakeOutput() gives
// bytes to write to the transport, Feed() consumes bytes read from it.
// Once established(), WriteMessage()/ReadMessage() move application data.

#ifndef SRC_TLS_SESSION_H_
#define SRC_TLS_SESSION_H_

#include <deque>
#include <string>

#include "src/base/rng.h"
#include "src/crypto/sha256.h"
#include "src/tls/record.h"

namespace cioprof {
class ProfRegistry;
}  // namespace cioprof

namespace ciotls {

enum class TlsRole { kClient, kServer };

enum class TlsState {
  kStart,
  kAwaitServerHello,   // client sent CH
  kAwaitClientHello,   // server start
  kAwaitFinished,      // waiting for peer's Finished
  kEstablished,
  kFailed,
};

class TlsSession {
 public:
  // `psk` is the attestation-bound pre-shared key; `psk_id` names it.
  // `seed` drives the random nonces (deterministic for tests).
  TlsSession(TlsRole role, ciobase::ByteSpan psk, std::string psk_id,
             uint64_t seed);

  // Starts the handshake (client queues its ClientHello). Idempotent.
  void Start();

  // Consumes transport bytes. Malformed or forged input moves the session
  // to kFailed with a fatal status (stateless-interface spirit: no retry).
  ciobase::Status Feed(ciobase::ByteSpan bytes);

  // Bytes queued for the transport (handshake flights, protected records).
  ciobase::Buffer TakeOutput();

  bool established() const { return state_ == TlsState::kEstablished; }
  bool failed() const { return state_ == TlsState::kFailed; }
  TlsState state() const { return state_; }
  const std::string& failure() const { return failure_; }

  // --- Application data (established only) ----------------------------------

  // Protects and queues a message (fragmented into records as needed).
  ciobase::Status WriteMessage(ciobase::ByteSpan plaintext);
  // Seals ONE record (<= kMaxRecordPayload of plaintext) directly into a
  // caller-provided span, bypassing the output queue — the registered-slot
  // path. `out` must hold plaintext.size() + kSealedRecordOverhead bytes.
  // Returns bytes written into `out`.
  ciobase::Result<size_t> SealRecordToSpan(ciobase::ByteSpan plaintext,
                                           ciobase::MutableByteSpan out);
  // Next decrypted application record payload, kUnavailable when none.
  ciobase::Result<ciobase::Buffer> ReadMessage();

  // Rotates our sending keys and tells the peer (KeyUpdate record).
  ciobase::Status RequestKeyUpdate();

  // Ratchet generations: how many times each direction's traffic secret has
  // been rotated forward since this handshake. A healthy pair converges to
  // client.send == server.recv (and vice versa) once the stream is drained.
  uint32_t send_generation() const { return send_generation_; }
  uint32_t recv_generation() const { return recv_generation_; }

  // Hash over CH || SH — the handshake transcript this session's keys are
  // bound to. Attestation-gated admission binds report nonces to it so a
  // report cannot be cut-and-pasted onto a different connection.
  ciocrypto::Sha256Digest transcript_hash() const { return TranscriptHash(); }

  // In-sim profiler of the owning node ("aead.encrypt"/"aead.decrypt"
  // probes around record protection); null = disabled.
  void set_profiler(cioprof::ProfRegistry* profiler) { prof_ = profiler; }

  struct Stats {
    uint64_t records_sealed = 0;
    uint64_t records_opened = 0;
    uint64_t bytes_protected = 0;
    uint64_t key_updates = 0;
    uint64_t auth_failures = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void Fail(std::string reason);
  void DeriveTrafficKeys();
  ciocrypto::Sha256Digest TranscriptHash() const;
  ciobase::Buffer FinishedMac(ciobase::ByteSpan base_key) const;
  ciobase::Status HandleHandshakeRecord(const Record& record);
  ciobase::Status HandleProtectedRecord(const Record& record);
  void QueueRecord(ciobase::ByteSpan record_bytes);
  void RotateSecret(ciobase::Buffer& secret, SealingKey& key);

  TlsRole role_;
  ciobase::Buffer psk_;
  std::string psk_id_;
  ciobase::Rng rng_;
  TlsState state_ = TlsState::kStart;
  std::string failure_;

  ciobase::Buffer transcript_;  // CH || SH bytes
  ciobase::Buffer client_secret_;
  ciobase::Buffer server_secret_;
  ciobase::Buffer client_finished_key_;
  ciobase::Buffer server_finished_key_;
  SealingKey send_key_;
  SealingKey recv_key_;
  ciobase::Buffer send_secret_;
  ciobase::Buffer recv_secret_;

  RecordReader reader_;
  ciobase::Buffer output_;
  std::deque<ciobase::Buffer> inbox_;
  uint32_t send_generation_ = 0;
  uint32_t recv_generation_ = 0;
  cioprof::ProfRegistry* prof_ = nullptr;
  Stats stats_;
};

}  // namespace ciotls

#endif  // SRC_TLS_SESSION_H_
