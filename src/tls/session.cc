#include "src/tls/session.h"

#include "src/crypto/hkdf.h"
#include "src/crypto/hmac.h"
#include "src/prof/profiler.h"

namespace ciotls {

namespace {

constexpr uint8_t kMsgClientHello = 1;
constexpr uint8_t kMsgServerHello = 2;
constexpr uint8_t kMsgFinished = 20;
constexpr size_t kRandomSize = 32;

ciobase::Buffer ExpandSecret(ciobase::ByteSpan secret, std::string_view label,
                             ciobase::ByteSpan context, size_t n) {
  return ciocrypto::HkdfExpandLabel(secret, label, context, n);
}

}  // namespace

TlsSession::TlsSession(TlsRole role, ciobase::ByteSpan psk,
                       std::string psk_id, uint64_t seed)
    : role_(role),
      psk_(psk.begin(), psk.end()),
      psk_id_(std::move(psk_id)),
      rng_(seed) {}

void TlsSession::Start() {
  if (state_ != TlsState::kStart) {
    return;
  }
  if (role_ == TlsRole::kClient) {
    ciobase::Buffer hello;
    hello.push_back(kMsgClientHello);
    ciobase::Buffer random = rng_.Bytes(kRandomSize);
    ciobase::Append(hello, random);
    hello.push_back(static_cast<uint8_t>(psk_id_.size()));
    ciobase::AppendString(hello, psk_id_);
    ciobase::Append(transcript_, hello);
    QueueRecord(FramePlaintextRecord(RecordType::kHandshake, hello));
    state_ = TlsState::kAwaitServerHello;
  } else {
    state_ = TlsState::kAwaitClientHello;
  }
}

void TlsSession::Fail(std::string reason) {
  state_ = TlsState::kFailed;
  failure_ = std::move(reason);
}

ciocrypto::Sha256Digest TlsSession::TranscriptHash() const {
  return ciocrypto::Sha256::Hash(transcript_);
}

void TlsSession::DeriveTrafficKeys() {
  ciocrypto::Sha256Digest early = ciocrypto::HkdfExtract({}, psk_);
  ciobase::Buffer derived = ExpandSecret(early, "derived", {}, 32);
  ciocrypto::Sha256Digest transcript = TranscriptHash();
  ciocrypto::Sha256Digest master = ciocrypto::HkdfExtract(derived, transcript);

  client_secret_ = ExpandSecret(master, "c ap traffic", transcript, 32);
  server_secret_ = ExpandSecret(master, "s ap traffic", transcript, 32);
  client_finished_key_ = ExpandSecret(client_secret_, "finished", {}, 32);
  server_finished_key_ = ExpandSecret(server_secret_, "finished", {}, 32);

  auto make_key = [](ciobase::ByteSpan secret) {
    return SealingKey(ExpandSecret(secret, "key", {}, 32),
                      ExpandSecret(secret, "iv", {}, 12));
  };
  if (role_ == TlsRole::kClient) {
    send_secret_ = client_secret_;
    recv_secret_ = server_secret_;
  } else {
    send_secret_ = server_secret_;
    recv_secret_ = client_secret_;
  }
  send_key_ = make_key(send_secret_);
  recv_key_ = make_key(recv_secret_);
}

ciobase::Buffer TlsSession::FinishedMac(ciobase::ByteSpan base_key) const {
  ciocrypto::Sha256Digest transcript = TranscriptHash();
  ciocrypto::Sha256Digest mac =
      ciocrypto::HmacSha256::Mac(base_key, transcript);
  ciobase::Buffer out;
  out.push_back(kMsgFinished);
  ciobase::Append(out, mac);
  return out;
}

void TlsSession::QueueRecord(ciobase::ByteSpan record_bytes) {
  ciobase::Append(output_, record_bytes);
}

ciobase::Buffer TlsSession::TakeOutput() {
  ciobase::Buffer out;
  out.swap(output_);
  return out;
}

ciobase::Status TlsSession::HandleHandshakeRecord(const Record& record) {
  const ciobase::Buffer& payload = record.payload;
  switch (state_) {
    case TlsState::kAwaitClientHello: {
      if (payload.size() < 2 + kRandomSize ||
          payload[0] != kMsgClientHello) {
        Fail("malformed ClientHello");
        return ciobase::Tampered(failure_);
      }
      size_t id_len = payload[1 + kRandomSize];
      if (payload.size() != 2 + kRandomSize + id_len) {
        Fail("malformed ClientHello length");
        return ciobase::Tampered(failure_);
      }
      std::string id(reinterpret_cast<const char*>(
                         payload.data() + 2 + kRandomSize),
                     id_len);
      if (id != psk_id_) {
        Fail("unknown PSK identity");
        return ciobase::Tampered(failure_);
      }
      ciobase::Append(transcript_, payload);
      ciobase::Buffer hello;
      hello.push_back(kMsgServerHello);
      ciobase::Buffer random = rng_.Bytes(kRandomSize);
      ciobase::Append(hello, random);
      ciobase::Append(transcript_, hello);
      QueueRecord(FramePlaintextRecord(RecordType::kHandshake, hello));
      DeriveTrafficKeys();
      state_ = TlsState::kAwaitFinished;
      return ciobase::OkStatus();
    }
    case TlsState::kAwaitServerHello: {
      if (payload.size() != 1 + kRandomSize ||
          payload[0] != kMsgServerHello) {
        Fail("malformed ServerHello");
        return ciobase::Tampered(failure_);
      }
      ciobase::Append(transcript_, payload);
      DeriveTrafficKeys();
      // Client Finished, protected under the fresh client traffic key.
      ciobase::Buffer finished = FinishedMac(client_finished_key_);
      QueueRecord(send_key_.Seal(RecordType::kHandshake, finished));
      ++stats_.records_sealed;
      state_ = TlsState::kAwaitFinished;
      return ciobase::OkStatus();
    }
    default:
      Fail("unexpected plaintext handshake record");
      return ciobase::Tampered(failure_);
  }
}

ciobase::Status TlsSession::HandleProtectedRecord(const Record& record) {
  CIO_PROF_SCOPE(prof_, "aead.decrypt");
  auto opened = recv_key_.Open(record.type, record.payload);
  if (!opened.ok()) {
    ++stats_.auth_failures;
    Fail("record authentication failed: " + opened.status().message());
    return ciobase::Tampered(failure_);
  }
  ++stats_.records_opened;

  switch (record.type) {
    case RecordType::kHandshake: {
      if (state_ != TlsState::kAwaitFinished) {
        Fail("unexpected Finished");
        return ciobase::Tampered(failure_);
      }
      ciobase::ByteSpan expected_key = role_ == TlsRole::kClient
                                           ? server_finished_key_
                                           : client_finished_key_;
      ciobase::Buffer expected = FinishedMac(expected_key);
      if (!ciobase::ConstantTimeEqual(*opened, expected)) {
        Fail("Finished MAC mismatch");
        return ciobase::Tampered(failure_);
      }
      if (role_ == TlsRole::kServer) {
        // Reply with our own Finished.
        ciobase::Buffer finished = FinishedMac(server_finished_key_);
        QueueRecord(send_key_.Seal(RecordType::kHandshake, finished));
        ++stats_.records_sealed;
      }
      state_ = TlsState::kEstablished;
      return ciobase::OkStatus();
    }
    case RecordType::kApplicationData:
      if (state_ != TlsState::kEstablished) {
        Fail("application data before establishment");
        return ciobase::Tampered(failure_);
      }
      inbox_.push_back(std::move(*opened));
      return ciobase::OkStatus();
    case RecordType::kKeyUpdate:
      if (state_ != TlsState::kEstablished) {
        Fail("key update before establishment");
        return ciobase::Tampered(failure_);
      }
      RotateSecret(recv_secret_, recv_key_);
      ++recv_generation_;
      ++stats_.key_updates;
      return ciobase::OkStatus();
    case RecordType::kAlert:
      Fail("peer alert");
      return ciobase::FailedPrecondition(failure_);
  }
  return ciobase::Internal("unhandled record type");
}

ciobase::Status TlsSession::Feed(ciobase::ByteSpan bytes) {
  if (state_ == TlsState::kFailed) {
    return ciobase::FailedPrecondition("session failed: " + failure_);
  }
  reader_.Feed(bytes);
  for (;;) {
    auto record = reader_.Next();
    if (!record.ok()) {
      if (record.status().code() == ciobase::StatusCode::kUnavailable) {
        return ciobase::OkStatus();
      }
      Fail(record.status().message());
      return record.status();
    }
    ciobase::Status status;
    bool plaintext_phase = state_ == TlsState::kAwaitClientHello ||
                           state_ == TlsState::kAwaitServerHello;
    if (record->type == RecordType::kHandshake && plaintext_phase) {
      status = HandleHandshakeRecord(*record);
    } else {
      status = HandleProtectedRecord(*record);
    }
    if (!status.ok()) {
      return status;
    }
  }
}

void TlsSession::RotateSecret(ciobase::Buffer& secret, SealingKey& key) {
  secret = ExpandSecret(secret, "traffic upd", {}, 32);
  key = SealingKey(ExpandSecret(secret, "key", {}, 32),
                   ExpandSecret(secret, "iv", {}, 12));
}

ciobase::Status TlsSession::WriteMessage(ciobase::ByteSpan plaintext) {
  if (state_ != TlsState::kEstablished) {
    return ciobase::FailedPrecondition("not established");
  }
  CIO_PROF_SCOPE(prof_, "aead.encrypt");
  size_t offset = 0;
  do {
    size_t n = std::min(kMaxRecordPayload, plaintext.size() - offset);
    // Seal straight into the output queue: no per-record temporaries.
    send_key_.SealInto(RecordType::kApplicationData,
                       plaintext.subspan(offset, n), output_);
    ++stats_.records_sealed;
    stats_.bytes_protected += n;
    offset += n;
  } while (offset < plaintext.size());
  return ciobase::OkStatus();
}

ciobase::Result<size_t> TlsSession::SealRecordToSpan(
    ciobase::ByteSpan plaintext, ciobase::MutableByteSpan out) {
  if (state_ != TlsState::kEstablished) {
    return ciobase::FailedPrecondition("not established");
  }
  CIO_PROF_SCOPE(prof_, "aead.encrypt");
  if (plaintext.size() > kMaxRecordPayload) {
    return ciobase::InvalidArgument("record plaintext too large");
  }
  if (out.size() < plaintext.size() + kSealedRecordOverhead) {
    return ciobase::InvalidArgument("seal target too small");
  }
  size_t written =
      send_key_.SealToSpan(RecordType::kApplicationData, plaintext, out);
  ++stats_.records_sealed;
  stats_.bytes_protected += plaintext.size();
  return written;
}

ciobase::Result<ciobase::Buffer> TlsSession::ReadMessage() {
  if (state_ == TlsState::kFailed) {
    return ciobase::FailedPrecondition("session failed: " + failure_);
  }
  if (inbox_.empty()) {
    return ciobase::Unavailable("no message");
  }
  ciobase::Buffer message = std::move(inbox_.front());
  inbox_.pop_front();
  return message;
}

ciobase::Status TlsSession::RequestKeyUpdate() {
  if (state_ != TlsState::kEstablished) {
    return ciobase::FailedPrecondition("not established");
  }
  uint8_t request = 1;
  QueueRecord(send_key_.Seal(RecordType::kKeyUpdate,
                             ciobase::ByteSpan(&request, 1)));
  ++stats_.records_sealed;
  RotateSecret(send_secret_, send_key_);
  ++send_generation_;
  ++stats_.key_updates;
  return ciobase::OkStatus();
}

}  // namespace ciotls
