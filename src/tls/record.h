// TLS-style record layer: framing, AEAD protection, strict sequencing.
//
// This is the "mandatory TLS layer" of the paper's L5 boundary (§3.2): it
// guarantees data integrity and confidentiality against a host that can
// observe, corrupt, replay or reorder TCP payload bytes. Records carry a
// 5-byte header (type, version, length) used as AEAD associated data; the
// nonce is the per-direction static IV XORed with a monotonically increasing
// 64-bit sequence number, so any replayed or reordered record fails
// authentication — exactly the property that lets the confidential unit
// distrust the TCP guarantees provided by the I/O stack.

#ifndef SRC_TLS_RECORD_H_
#define SRC_TLS_RECORD_H_

#include <optional>

#include "src/base/status.h"
#include "src/crypto/aead.h"

namespace ciotls {

enum class RecordType : uint8_t {
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
  kKeyUpdate = 24,
};

inline constexpr size_t kRecordHeaderSize = 5;
inline constexpr uint16_t kRecordVersion = 0x0304;
// Cap per-record plaintext like TLS (2^14).
inline constexpr size_t kMaxRecordPayload = 16384;
// Bytes a sealed record adds on top of its plaintext: header + AEAD tag.
inline constexpr size_t kSealedRecordOverhead =
    kRecordHeaderSize + ciocrypto::kAeadTagSize;

struct Record {
  RecordType type;
  ciobase::Buffer payload;
};

// Frames a plaintext record (no protection) — used for the clear-text
// handshake flights.
ciobase::Buffer FramePlaintextRecord(RecordType type,
                                     ciobase::ByteSpan payload);

// One direction of protected traffic.
class SealingKey {
 public:
  SealingKey() = default;
  SealingKey(ciobase::ByteSpan key, ciobase::ByteSpan iv);

  bool valid() const { return valid_; }
  uint64_t seq() const { return seq_; }

  // Produces a full protected record (header || ciphertext || tag).
  ciobase::Buffer Seal(RecordType type, ciobase::ByteSpan plaintext);
  // Appends a full protected record to `out`, reusing its capacity — the
  // zero-allocation send path (plaintext must not alias out).
  void SealInto(RecordType type, ciobase::ByteSpan plaintext,
                ciobase::Buffer& out);
  // Seals a full protected record directly into a caller-provided span —
  // the registered-slot path, where no intermediate buffer may exist. `out`
  // must hold plaintext.size() + kSealedRecordOverhead bytes and must not
  // alias `plaintext`. Returns bytes written.
  size_t SealToSpan(RecordType type, ciobase::ByteSpan plaintext,
                    ciobase::MutableByteSpan out);
  // Opens `body` (ciphertext||tag) for a record with the given header.
  ciobase::Result<ciobase::Buffer> Open(RecordType type,
                                        ciobase::ByteSpan body);

 private:
  void NonceForSeq(uint64_t seq,
                   uint8_t out[ciocrypto::kAeadNonceSize]) const;

  bool valid_ = false;
  ciobase::Buffer key_;
  ciobase::Buffer iv_;
  uint64_t seq_ = 0;
};

// Incremental record parser over a TCP byte stream: feed bytes, pop records.
// Backed by a contiguous buffer with a consumed-prefix offset: popping a
// record is O(record) and feeding compacts lazily, so steady-state streaming
// reuses one allocation instead of shifting a deque byte by byte.
class RecordReader {
 public:
  void Feed(ciobase::ByteSpan bytes);

  // Returns the next complete raw record (type + body, body still
  // protected if keys are in use), kUnavailable when incomplete, or an
  // error on malformed framing.
  ciobase::Result<Record> Next();

  size_t buffered() const { return buffer_.size() - head_; }

 private:
  ciobase::Buffer buffer_;
  size_t head_ = 0;  // bytes of buffer_ already consumed
};

}  // namespace ciotls

#endif  // SRC_TLS_RECORD_H_
