// BondPort: one FramePort over two virtio-net devices sharing a MAC.
//
// The multi-device part of the device zoo: a guest with two independent
// virtio-net instances (own shared region, own rings, own negotiation) bonds
// them below the network stack, striping TX round-robin and draining both on
// RX. The fabric spreads inbound unicast across the two device endpoints the
// same way (RSS stand-in), so both rings carry live traffic and interleaved
// doorbells/completions are inside the fuzzed state space. Each leg keeps
// its own hardening and watchdog; a reset on one leg surfaces as the usual
// typed kLinkReset while the other leg keeps carrying frames.

#ifndef SRC_VIRTIO_BOND_PORT_H_
#define SRC_VIRTIO_BOND_PORT_H_

#include <algorithm>

#include "src/net/port.h"
#include "src/virtio/net_driver.h"

namespace ciovirtio {

class BondPort final : public cionet::FramePort {
 public:
  BondPort(VirtioNetDriver* primary, VirtioNetDriver* secondary)
      : legs_{primary, secondary} {}

  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override {
    size_t sent = 0;
    for (ciobase::ByteSpan frame : frames) {
      VirtioNetDriver* leg = legs_[tx_round_++ % 2];
      auto one = leg->SendFrames({&frame, 1});
      if (!one.ok() || *one == 0) {
        // Ring full or leg down: try the other leg before giving up, so a
        // single dead device degrades to half bandwidth, not zero.
        VirtioNetDriver* other = legs_[tx_round_++ % 2];
        one = other->SendFrames({&frame, 1});
      }
      if (!one.ok()) {
        if (sent == 0) {
          return one.status();
        }
        break;
      }
      if (*one == 0) {
        break;
      }
      sent += *one;
    }
    return sent;
  }

  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override {
    batch.Clear();
    ciobase::Status first_error = ciobase::OkStatus();
    for (VirtioNetDriver* leg : legs_) {
      if (batch.size() >= max_frames) {
        break;
      }
      scratch_.Clear();
      auto got = leg->ReceiveFrames(scratch_, max_frames - batch.size());
      if (!got.ok()) {
        if (first_error.ok()) {
          first_error = got.status();
        }
        continue;  // the other leg still gets drained
      }
      for (size_t i = 0; i < scratch_.size(); ++i) {
        ciobase::ByteSpan frame = scratch_[i];
        ciobase::Buffer& slot = batch.Append();
        slot.assign(frame.begin(), frame.end());
      }
    }
    if (batch.size() == 0 && !first_error.ok()) {
      return first_error;
    }
    return batch.size();
  }

  cionet::MacAddress mac() const override { return legs_[0]->mac(); }
  uint16_t mtu() const override {
    return std::min(legs_[0]->mtu(), legs_[1]->mtu());
  }

 private:
  VirtioNetDriver* legs_[2];
  uint64_t tx_round_ = 0;
  cionet::FrameBatch scratch_;
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_BOND_PORT_H_
