#include "src/virtio/swiotlb.h"

#include <cassert>

#include "src/base/bits.h"

namespace ciovirtio {

Swiotlb::Swiotlb(ciotee::SharedRegion* region, uint64_t pool_offset,
                 size_t slot_size, size_t slot_count,
                 ciobase::CostModel* costs)
    : region_(region),
      pool_offset_(pool_offset),
      slot_size_(slot_size),
      slot_count_(slot_count),
      costs_(costs) {
  assert(ciobase::IsPowerOfTwo(slot_size));
  assert(pool_offset + slot_size * slot_count <= region->size());
  for (size_t i = 0; i < slot_count; ++i) {
    free_.push_back(pool_offset + i * slot_size);
  }
}

ciobase::Result<uint64_t> Swiotlb::AllocSlot() {
  if (free_.empty()) {
    return ciobase::ResourceExhausted("swiotlb pool empty");
  }
  uint64_t offset = free_.front();
  free_.pop_front();
  return offset;
}

ciobase::Status Swiotlb::FreeSlot(uint64_t offset) {
  if (!ValidSlotOffset(offset)) {
    return ciobase::InvalidArgument("not a slot offset");
  }
  free_.push_back(offset);
  return ciobase::OkStatus();
}

void Swiotlb::Reset() {
  free_.clear();
  for (size_t i = 0; i < slot_count_; ++i) {
    free_.push_back(pool_offset_ + i * slot_size_);
  }
}

bool Swiotlb::ValidSlotOffset(uint64_t offset) const {
  return offset >= pool_offset_ && offset < pool_offset_ + pool_size() &&
         ciobase::IsAligned(offset - pool_offset_, slot_size_);
}

ciobase::Status Swiotlb::CopyOut(uint64_t offset, ciobase::ByteSpan data) {
  if (!ValidSlotOffset(offset) || data.size() > slot_size_) {
    return ciobase::InvalidArgument("bad bounce-out");
  }
  costs_->ChargeCopy(data.size());
  return region_->GuestWrite(offset, data);
}

ciobase::Result<ciobase::Buffer> Swiotlb::CopyIn(uint64_t offset, size_t len) {
  if (!ValidSlotOffset(offset)) {
    return ciobase::InvalidArgument("bad bounce-in");
  }
  len = std::min(len, slot_size_);
  ciobase::Buffer out(len);
  costs_->ChargeCopy(len);
  CIO_RETURN_IF_ERROR(region_->GuestRead(offset, out));
  return out;
}

}  // namespace ciovirtio
