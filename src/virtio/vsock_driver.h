// VirtioVsockDriver: the hardened guest half of the vsock stream device.
//
// Every inbound packet is host-authored: the driver bounces it into private
// memory with a single fetch, validates the completion id against its own
// bookkeeping, and then treats every header field — CIDs, ports, length,
// opcode, credit counters — as attacker data. Violations surface as typed
// Status (kHostViolation / kLinkReset), never as trust in a re-read. The
// driver carries no watchdog: Poll() never blocks, and Connect() bounds its
// wait with an explicit deadline on the simulated clock (kTimedOut beyond
// it). Payload confidentiality/integrity is NOT this layer's job — like the
// net path, callers that need it seal application records (the fuzz target
// does AEAD over the echo payload, so host corruption is kTampered there,
// not silent).

#ifndef SRC_VIRTIO_VSOCK_DRIVER_H_
#define SRC_VIRTIO_VSOCK_DRIVER_H_

#include <deque>
#include <map>

#include "src/base/clock.h"
#include "src/hostsim/observability.h"
#include "src/virtio/swiotlb.h"
#include "src/virtio/virtqueue.h"
#include "src/virtio/vsock_device.h"

namespace ciovirtio {

class VirtioVsockDriver {
 public:
  VirtioVsockDriver(ciotee::SharedRegion* region, VsockLayout layout,
                    KickTarget* device, ciobase::CostModel* costs,
                    uint64_t expected_cid,
                    ciohost::ObservabilityLog* observability);

  // Full feature/status dance (shared with virtio-net, including the
  // mid-flight re-negotiation checks), then one validated read of the
  // host-published guest CID.
  ciobase::Status Negotiate();

  // Opens the single stream to (host CID, `port`). Spins the simulated
  // clock until the response arrives or `deadline_ns` elapses.
  ciobase::Status Connect(uint32_t port, uint64_t deadline_ns = 1'000'000);

  // Sends one kOpRw payload on the connected stream, respecting the peer's
  // advertised credit (kResourceExhausted when the window is closed).
  ciobase::Status Send(ciobase::ByteSpan payload);

  // Drains completed RX buffers into the inbound queue. Never blocks.
  // Returns the first violation encountered (remaining completions in the
  // batch are still consumed and validated).
  ciobase::Status Poll();

  // Pops one received payload, if any (after Poll()).
  ciobase::Result<ciobase::Buffer> Receive();

  bool connected() const { return connected_; }
  uint64_t guest_cid() const { return guest_cid_; }

  struct Stats {
    uint64_t packets_sent = 0;
    uint64_t packets_received = 0;
    uint64_t completions_rejected = 0;
    uint64_t header_violations = 0;
    uint64_t credit_stalls = 0;
    uint64_t resets_seen = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  ciobase::Status SendPacket(const VsockPacketHeader& header,
                             ciobase::ByteSpan payload);
  void PostRxBuffer();
  // Validates one RX used entry; appends payloads to rx_queue_.
  ciobase::Status ConsumeRx(const UsedElem& elem);
  void ReapTx();

  ciotee::SharedRegion* region_;
  VsockLayout layout_;
  VirtqueueDriver tx_;
  VirtqueueDriver rx_;
  Swiotlb pool_;
  KickTarget* device_;
  ciobase::CostModel* costs_;
  uint64_t expected_cid_;
  ciohost::ObservabilityLog* observability_;

  bool negotiated_ = false;
  bool connected_ = false;
  uint64_t guest_cid_ = 0;
  uint32_t local_port_ = 0;
  uint32_t remote_port_ = 0;
  // Credit (snapshot of the peer's last advertisement; host-authored, used
  // only to throttle our own sends — lying shrinks the host's own service).
  uint32_t peer_buf_alloc_ = 0;
  uint32_t peer_fwd_cnt_ = 0;
  uint32_t tx_cnt_ = 0;   // total payload bytes we have sent
  uint32_t fwd_cnt_ = 0;  // total payload bytes we have consumed

  std::map<uint16_t, uint64_t> tx_outstanding_;  // desc id -> pool slot
  std::map<uint16_t, uint64_t> rx_outstanding_;
  std::deque<ciobase::Buffer> rx_queue_;
  std::vector<UsedElem> used_scratch_;
  Stats stats_;
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_VSOCK_DRIVER_H_
