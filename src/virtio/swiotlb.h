// Swiotlb: a bounce-buffer pool in host-visible shared memory, modeled on
// Linux's SWIOTLB as used under SEV/TDX [36].
//
// Confidential VMs cannot DMA from private (encrypted) memory, so every
// buffer a paravirtual device touches must live in a shared pool; data is
// *bounced* (copied) between private memory and pool slots. The paper's
// critique (§2.5): retrofitted onto virtio, SWIOTLB "copies systematically
// even in cases where double fetch is impossible" — the copy is not part of
// the protocol design, so it cannot be elided when it is provably
// unnecessary. The hardened cio L2 transport instead makes the copy a
// first-class protocol element, performed early and only when needed.
//
// Slots are fixed-size and power-of-two aligned so offsets can be masked.

#ifndef SRC_VIRTIO_SWIOTLB_H_
#define SRC_VIRTIO_SWIOTLB_H_

#include <deque>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/tee/shared_region.h"

namespace ciovirtio {

class Swiotlb {
 public:
  // Manages [pool_offset, pool_offset + slot_size * slot_count) inside
  // `region`. slot_size must be a power of two.
  Swiotlb(ciotee::SharedRegion* region, uint64_t pool_offset,
          size_t slot_size, size_t slot_count, ciobase::CostModel* costs);

  size_t slot_size() const { return slot_size_; }
  size_t slot_count() const { return slot_count_; }
  size_t free_slots() const { return free_.size(); }

  // Allocates a slot; returns its byte offset within the shared region.
  ciobase::Result<uint64_t> AllocSlot();
  ciobase::Status FreeSlot(uint64_t offset);

  // Bounce out: copies `data` into the slot at `offset` (charged).
  ciobase::Status CopyOut(uint64_t offset, ciobase::ByteSpan data);
  // Bounce in: copies `len` bytes from the slot into private memory
  // (charged). `len` is clamped to the slot size.
  ciobase::Result<ciobase::Buffer> CopyIn(uint64_t offset, size_t len);

  // True if `offset` is a valid slot start inside the pool.
  bool ValidSlotOffset(uint64_t offset) const;

  // Rebuilds the free list from scratch (ring reset: every outstanding slot
  // belonged to the old epoch and is forfeit).
  void Reset();
  uint64_t pool_offset() const { return pool_offset_; }
  uint64_t pool_size() const { return slot_size_ * slot_count_; }

 private:
  ciotee::SharedRegion* region_;
  uint64_t pool_offset_;
  size_t slot_size_;
  size_t slot_count_;
  ciobase::CostModel* costs_;
  std::deque<uint64_t> free_;  // FIFO: delays slot reuse (see virtqueue.h)
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_SWIOTLB_H_
