// VirtioNetDriver: the guest-side virtio-net driver, with switchable
// retrofit hardening.
//
// This is the experimental subject for §2.5: the same driver codebase can
// run unhardened (the historical Linux situation: in-place parsing of shared
// structures, completion ids and lengths trusted) or with the retrofit
// mitigations that hardening commits added one by one — validate completion
// ids against outstanding buffers, clamp used lengths, single-fetch
// snapshots, SWIOTLB bouncing, feature restriction. The HardeningOptions
// knobs map 1:1 to the commit categories of Figures 3 and 4, so the attack
// campaign and the overhead benchmarks can turn each class of fix on and
// off independently.

#ifndef SRC_VIRTIO_NET_DRIVER_H_
#define SRC_VIRTIO_NET_DRIVER_H_

#include <map>

#include "src/base/clock.h"
#include "src/base/recovery.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/port.h"
#include "src/virtio/net_device.h"
#include "src/virtio/swiotlb.h"
#include "src/virtio/virtqueue.h"

namespace ciovirtio {

struct HardeningOptions {
  bool validate_completion_id = false;  // "add checks"
  bool clamp_used_len = false;          // "add checks"
  bool single_fetch = false;            // "add copies" (snapshot fields)
  bool bounce_rx = false;               // SWIOTLB-style payload copy-in
  bool restrict_features = false;       // "restrict features"
  // DPDK-style busy polling: skip the per-frame doorbell (the device is
  // polled externally). Used by the passthrough profile.
  bool polling = false;

  static HardeningOptions None() { return {}; }
  static HardeningOptions Full() {
    return {true, true, true, true, true, false};
  }
  // Checks without the copies: the cheap half of the retrofit.
  static HardeningOptions ChecksOnly() {
    return {true, true, false, false, true, false};
  }
  // Unhardened + polled: the rkt-io/ShieldBox DPDK configuration.
  static HardeningOptions Passthrough() {
    return {false, false, false, false, false, true};
  }
};

class VirtioNetDriver final : public cionet::FramePort {
 public:
  // `recovery` enables the watchdog + reset-and-reattach machinery; the
  // default leaves it off (a wedged device wedges the link).
  VirtioNetDriver(ciotee::SharedRegion* region, VirtioNetLayout layout,
                  KickTarget* device, ciobase::CostModel* costs,
                  HardeningOptions hardening,
                  ciohost::ObservabilityLog* observability,
                  const ciobase::RecoveryConfig& recovery = {});

  // Runs feature negotiation and posts the initial RX buffers. Must be
  // called (and succeed) before Send/Receive.
  ciobase::Status Negotiate();

  // --- cionet::FramePort -----------------------------------------------------

  // Batched ring ops: TX reaps completions once and fires a single doorbell
  // for the whole batch (virtio event suppression); RX reads the shared used
  // index once per batch. Per-frame validation (completion ids, length
  // clamps, bounce copies) applies to every element identically.
  //
  // ReceiveFrames doubles as the recovery poll (see L2Transport): it arms
  // the watchdog while completions are owed, and on expiry resets the rings
  // and re-negotiates (kLinkReset) or gives up (kTimedOut).
  ciobase::Result<size_t> SendFrames(
      std::span<const ciobase::ByteSpan> frames) override;
  ciobase::Result<size_t> ReceiveFrames(cionet::FrameBatch& batch,
                                        size_t max_frames) override;

  cionet::MacAddress mac() const override { return config_.mac; }
  uint16_t mtu() const override { return config_.mtu; }

  // Returns the attack surface of this transport for the adversary: the
  // shared-memory locations of descriptor fields, ring indices and payload
  // areas.
  std::vector<ciohost::SurfaceField> AttackSurface() const;

  // Reset-and-reattach: bumps the reset epoch in config space, resets both
  // virtqueue halves and the bounce pool, forfeits all outstanding buffers,
  // and re-runs the full negotiation dance (fresh counters, re-posted RX
  // ring). Exposed for tests; the watchdog calls it on expiry.
  ciobase::Status ResetAndReattach();

  uint64_t reset_epoch() const { return reset_epoch_; }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t completions_rejected = 0;  // hardened path refusals
    uint64_t rx_reposts = 0;
    uint64_t watchdog_fires = 0;
    uint64_t ring_resets = 0;
  };
  const Stats& stats() const { return stats_; }
  const NegotiatedConfig& config() const { return config_; }

 private:
  // Returns how many TX completions were reaped (progress signal).
  size_t ReapTxCompletions();
  void PostRxBuffer();
  ciobase::Result<ciobase::Buffer> ReceiveHardened(const UsedElem& elem);
  ciobase::Result<ciobase::Buffer> ReceiveUnhardened(const UsedElem& elem);

  ciotee::SharedRegion* region_;
  VirtioNetLayout layout_;
  VirtqueueDriver tx_;
  VirtqueueDriver rx_;
  Swiotlb pool_;
  KickTarget* device_;
  ciobase::CostModel* costs_;
  HardeningOptions hardening_;
  ciohost::ObservabilityLog* observability_;
  ciobase::RecoveryConfig recovery_;
  ciobase::LinkWatchdog watchdog_;
  NegotiatedConfig config_;
  bool negotiated_ = false;
  uint64_t reset_epoch_ = 0;

  // Guest-private bookkeeping: descriptor id -> pool slot it points at.
  std::map<uint16_t, uint64_t> tx_outstanding_;
  std::map<uint16_t, uint64_t> rx_outstanding_;
  // Reused across ReceiveFrames calls (zero-allocation steady state).
  std::vector<UsedElem> used_scratch_;
  // Separate scratch for TX reaping: ReapTxCompletions runs inside
  // ReceiveFrames while used_scratch_ still holds the RX batch.
  std::vector<UsedElem> tx_used_scratch_;
  Stats stats_;
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_NET_DRIVER_H_
