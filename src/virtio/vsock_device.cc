#include "src/virtio/vsock_device.h"

#include <algorithm>

#include "src/base/bits.h"
#include "src/base/bytes.h"

namespace ciovirtio {

void EncodeVsockHeader(const VsockPacketHeader& header, uint8_t* out) {
  ciobase::StoreLe64(out, header.src_cid);
  ciobase::StoreLe64(out + 8, header.dst_cid);
  ciobase::StoreLe32(out + 16, header.src_port);
  ciobase::StoreLe32(out + 20, header.dst_port);
  ciobase::StoreLe32(out + 24, header.len);
  ciobase::StoreLe16(out + 28, header.op);
  ciobase::StoreLe16(out + 30, header.flags);
  ciobase::StoreLe32(out + 32, header.buf_alloc);
  ciobase::StoreLe32(out + 36, header.fwd_cnt);
}

VsockPacketHeader DecodeVsockHeader(const uint8_t* in) {
  VsockPacketHeader header;
  header.src_cid = ciobase::LoadLe64(in);
  header.dst_cid = ciobase::LoadLe64(in + 8);
  header.src_port = ciobase::LoadLe32(in + 16);
  header.dst_port = ciobase::LoadLe32(in + 20);
  header.len = ciobase::LoadLe32(in + 24);
  header.op = ciobase::LoadLe16(in + 28);
  header.flags = ciobase::LoadLe16(in + 30);
  header.buf_alloc = ciobase::LoadLe32(in + 32);
  header.fwd_cnt = ciobase::LoadLe32(in + 36);
  return header;
}

VsockLayout VsockLayout::Make(uint16_t queue_size, size_t pool_slot_size,
                              size_t pool_slot_count) {
  VsockLayout layout;
  layout.config.base = 0;
  layout.tx.base = ConfigLayout::kSize;
  layout.tx.queue_size = queue_size;
  layout.rx.base = ciobase::AlignUp(layout.tx.base + layout.tx.TotalSize(), 64);
  layout.rx.queue_size = queue_size;
  layout.pool_offset =
      ciobase::AlignUp(layout.rx.base + layout.rx.TotalSize(), 4096);
  layout.pool_slot_size = pool_slot_size;
  layout.pool_slot_count = pool_slot_count;
  return layout;
}

VirtioVsockDevice::VirtioVsockDevice(ciotee::SharedRegion* region,
                                     VsockLayout layout, uint64_t guest_cid,
                                     ciohost::Adversary* adversary,
                                     ciohost::ObservabilityLog* observability,
                                     ciobase::SimClock* clock)
    : region_(region),
      layout_(layout),
      tx_(region, layout.tx, adversary),
      rx_(region, layout.rx, adversary),
      guest_cid_(guest_cid),
      adversary_(adversary),
      observability_(observability),
      clock_(clock) {
  // Config block: status + features via the shared helper, then the guest
  // CID over the MAC/MTU bytes (vsock has neither).
  DeviceInitConfig(region, layout.config, kFeatureVersion1,
                   cionet::MacAddress{}, 0);
  region->HostWriteLe64(layout.GuestCidOffset(), guest_cid);
}

bool VirtioVsockDevice::Faulted(ciohost::FaultStrategy strategy) const {
  return adversary_ != nullptr &&
         adversary_->FaultActive(strategy, clock_->now_ns());
}

void VirtioVsockDevice::Kick() {
  if (Faulted(ciohost::FaultStrategy::kSwallowDoorbell) ||
      Faulted(ciohost::FaultStrategy::kLinkKill)) {
    ++stats_.kicks_swallowed;
    return;
  }
  ++stats_.kicks;
  if (observability_ != nullptr) {
    observability_->Record(ciohost::ObsCategory::kDoorbell, clock_->now_ns(),
                           "vsock kick");
  }
  Poll();
}

void VirtioVsockDevice::Poll() {
  if (Faulted(ciohost::FaultStrategy::kLinkKill) ||
      Faulted(ciohost::FaultStrategy::kStallCounters)) {
    return;
  }
  AdoptGuestEpoch();
  DeviceProcessStatus(region_, layout_.config, kFeatureVersion1);
  DrainTx();
  if (Faulted(ciohost::FaultStrategy::kGarbageCounters)) {
    region_->HostWriteLe16(layout_.tx.UsedIdx(), 0xffff);
    region_->HostWriteLe16(layout_.rx.UsedIdx(), 0xffff);
  }
}

void VirtioVsockDevice::AdoptGuestEpoch() {
  uint64_t guest_epoch =
      region_->HostReadLe64(layout_.config.ResetEpochOffset());
  if (guest_epoch == epoch_) {
    return;
  }
  epoch_ = guest_epoch;
  tx_.Reset();
  rx_.Reset();
  host_fwd_cnt_ = 0;
  host_tx_cnt_ = 0;
  region_->HostWriteLe64(layout_.config.DeviceEpochOffset(), epoch_);
  ++stats_.epoch_adoptions;
}

void VirtioVsockDevice::DrainTx() {
  // Per-poll budget: bounds the damage of a forged avail index (an honest
  // driver never exceeds queue_size outstanding submissions).
  for (uint16_t budget = 0; budget < layout_.tx.queue_size; ++budget) {
    std::optional<uint16_t> head = tx_.PopAvail();
    if (!head.has_value()) {
      break;
    }
    std::vector<VirtqDesc> chain = tx_.ReadChain(*head);
    ciobase::Buffer packet;
    for (const VirtqDesc& desc : chain) {
      if ((desc.flags & kDescFlagWrite) != 0) {
        continue;
      }
      // Same per-descriptor DMA bound as VirtioNetDevice::DrainTx: honest
      // drivers never exceed one pool slot, so the clamp only defuses
      // forged lengths.
      uint32_t len = std::min<uint32_t>(
          desc.len, static_cast<uint32_t>(layout_.pool_slot_size));
      size_t old_size = packet.size();
      packet.resize(old_size + len);
      region_->HostRead(desc.addr, ciobase::MutableByteSpan(
                                       packet.data() + old_size, len));
    }
    uint32_t consumed = static_cast<uint32_t>(packet.size());
    if (packet.size() < kVsockHeaderSize) {
      ++stats_.malformed_from_guest;
      tx_.PushUsed(*head, consumed, consumed);
      continue;
    }
    ++stats_.packets_rx;
    VsockPacketHeader header = DecodeVsockHeader(packet.data());
    uint32_t payload_len = std::min<uint32_t>(
        header.len,
        static_cast<uint32_t>(packet.size() - kVsockHeaderSize));
    ciobase::ByteSpan payload(packet.data() + kVsockHeaderSize, payload_len);
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             packet.size(), "vsock tx packet");
    }

    // Reply with src/dst swapped; credit fields describe the host side.
    VsockPacketHeader reply;
    reply.src_cid = header.dst_cid;
    reply.dst_cid = header.src_cid;
    reply.src_port = header.dst_port;
    reply.dst_port = header.src_port;
    switch (header.op) {
      case kVsockOpRequest:
        ++stats_.connects;
        reply.op = kVsockOpResponse;
        SendToGuest(reply, {});
        break;
      case kVsockOpRw: {
        host_fwd_cnt_ += payload_len;
        ciobase::Buffer echoed(payload.begin(), payload.end());
        if (adversary_ != nullptr) {
          adversary_->MaybeCorruptPayload(echoed);
        }
        reply.op = kVsockOpRw;
        reply.len = static_cast<uint32_t>(echoed.size());
        host_tx_cnt_ += reply.len;
        stats_.bytes_echoed += reply.len;
        if (Faulted(ciohost::FaultStrategy::kDropFrames)) {
          ++stats_.packets_dropped_fault;
        } else {
          SendToGuest(reply, echoed);
          if (Faulted(ciohost::FaultStrategy::kDuplicateFrames)) {
            ++stats_.packets_duplicated_fault;
            SendToGuest(reply, echoed);
          }
        }
        break;
      }
      case kVsockOpCreditRequest:
        reply.op = kVsockOpCreditUpdate;
        SendToGuest(reply, {});
        break;
      case kVsockOpShutdown:
        reply.op = kVsockOpRst;
        SendToGuest(reply, {});
        break;
      case kVsockOpCreditUpdate:
        break;  // accounting only, no reply
      default:
        ++stats_.malformed_from_guest;
        break;
    }
    tx_.PushUsed(*head, consumed, consumed);
  }
}

void VirtioVsockDevice::SendToGuest(const VsockPacketHeader& header_in,
                                    ciobase::ByteSpan payload) {
  std::optional<uint16_t> head = rx_.PopAvail();
  if (!head.has_value()) {
    ++stats_.tx_dropped_no_buffer;
    return;
  }
  VirtqDesc desc = rx_.ReadDesc(*head);
  VsockPacketHeader header = header_in;
  // Every host->guest packet carries the host's current credit state.
  header.buf_alloc = 1 << 20;
  header.fwd_cnt = host_fwd_cnt_;
  uint8_t raw[kVsockHeaderSize];
  EncodeVsockHeader(header, raw);
  uint32_t n = std::min<uint32_t>(
      desc.len, static_cast<uint32_t>(kVsockHeaderSize + payload.size()));
  bool torn = Faulted(ciohost::FaultStrategy::kTornWrite);
  uint32_t header_bytes = std::min<uint32_t>(n, kVsockHeaderSize);
  region_->HostWrite(desc.addr, ciobase::ByteSpan(raw, header_bytes));
  if (n > kVsockHeaderSize) {
    uint32_t body = n - static_cast<uint32_t>(kVsockHeaderSize);
    // Torn write: claim the full packet but land only half the payload.
    uint32_t written = torn ? body / 2 : body;
    region_->HostWrite(desc.addr + kVsockHeaderSize,
                       ciobase::ByteSpan(payload.data(), written));
  }
  ++stats_.packets_tx;
  rx_.PushUsed(*head, n, desc.len);
}

}  // namespace ciovirtio
