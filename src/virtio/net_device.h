// VirtioNetDevice: the host-side virtio-net device model.
//
// This is the untrusted half: it lives in the host domain, reads the guest's
// virtqueues through host accessors, moves frames to/from the network
// fabric, and — when the simulation arms an adversary — actively attacks the
// guest through inflated used-lengths, replayed completions, index storms
// and payload corruption. It also feeds the observability log with
// everything a real hypervisor backend would see: doorbells, frame lengths,
// timings, and config-space traffic.

#ifndef SRC_VIRTIO_NET_DEVICE_H_
#define SRC_VIRTIO_NET_DEVICE_H_

#include "src/base/clock.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/net/fabric.h"
#include "src/virtio/negotiation.h"
#include "src/virtio/virtqueue.h"

namespace ciovirtio {

// Doorbell target; implemented by host device models.
class KickTarget {
 public:
  virtual ~KickTarget() = default;
  virtual void Kick() = 0;
};

// Memory geometry of a complete virtio-net device in one shared region.
struct VirtioNetLayout {
  ConfigLayout config;
  VirtqLayout tx;
  VirtqLayout rx;
  uint64_t pool_offset = 0;
  size_t pool_slot_size = 2048;
  size_t pool_slot_count = 256;

  // Computes a packed layout for the given queue size and pool geometry.
  static VirtioNetLayout Make(uint16_t queue_size, size_t pool_slot_size,
                              size_t pool_slot_count);
  uint64_t TotalSize() const {
    return pool_offset + pool_slot_size * pool_slot_count;
  }
};

class VirtioNetDevice final : public KickTarget {
 public:
  VirtioNetDevice(ciotee::SharedRegion* region, VirtioNetLayout layout,
                  cionet::Fabric* fabric, std::string name,
                  cionet::MacAddress mac, uint16_t mtu,
                  uint64_t offered_features, ciohost::Adversary* adversary,
                  ciohost::ObservabilityLog* observability,
                  ciobase::SimClock* clock);

  // Device-side main loop step: control plane, TX drain, RX fill.
  void Poll();

  // Guest doorbell (charged guest-side; observed host-side).
  void Kick() override;

  cionet::MacAddress mac() const { return mac_; }

  struct Stats {
    uint64_t frames_tx = 0;  // guest -> fabric
    uint64_t frames_rx = 0;  // fabric -> guest
    uint64_t rx_dropped_no_buffer = 0;
    uint64_t kicks = 0;
    uint64_t kicks_swallowed = 0;
    uint64_t frames_dropped_fault = 0;
    uint64_t frames_duplicated_fault = 0;
    uint64_t epoch_adoptions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bool Faulted(ciohost::FaultStrategy strategy) const;
  void AdoptGuestEpoch();
  void DrainTx();
  void FillRx();

  ciotee::SharedRegion* region_;
  VirtioNetLayout layout_;
  VirtqueueDevice tx_;
  VirtqueueDevice rx_;
  cionet::Fabric* fabric_;
  cionet::EndpointId endpoint_;
  cionet::MacAddress mac_;
  uint64_t offered_features_;
  ciohost::Adversary* adversary_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;
  uint64_t epoch_ = 0;  // last guest reset epoch this device adopted
  Stats stats_;
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_NET_DEVICE_H_
