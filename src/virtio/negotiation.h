// VirtIO device status / feature negotiation state machine and config space.
//
// The paper (§2.5) blames much of virtio's hardening complexity on its
// "extensive, stateful configuration protocols that open for non-trivial
// timing and ordering vulnerabilities". This module implements that control
// plane faithfully enough to measure it: a multi-step status dance
// (RESET → ACKNOWLEDGE → DRIVER → feature exchange → FEATURES_OK →
// DRIVER_OK), a config space the device can mutate at any time (MAC, MTU),
// and feature bits whose value the host controls. Every config-space access
// is a host-observable event, and every field read is a fresh fetch of
// host-controlled state — compare cio::L2Config, which fixes everything at
// construction and has no control plane at all ("zero (re-)negotiation").

#ifndef SRC_VIRTIO_NEGOTIATION_H_
#define SRC_VIRTIO_NEGOTIATION_H_

#include "src/base/status.h"
#include "src/hostsim/observability.h"
#include "src/net/wire.h"
#include "src/tee/shared_region.h"

namespace ciovirtio {

// Device status bits (VirtIO 1.2 §2.1).
inline constexpr uint8_t kStatusAcknowledge = 1;
inline constexpr uint8_t kStatusDriver = 2;
inline constexpr uint8_t kStatusDriverOk = 4;
inline constexpr uint8_t kStatusFeaturesOk = 8;
inline constexpr uint8_t kStatusNeedsReset = 64;
inline constexpr uint8_t kStatusFailed = 128;

// Feature bits (a representative subset).
inline constexpr uint64_t kFeatureCsum = 1ULL << 0;
inline constexpr uint64_t kFeatureMac = 1ULL << 5;
inline constexpr uint64_t kFeatureMtu = 1ULL << 3;
inline constexpr uint64_t kFeatureMrgRxbuf = 1ULL << 15;
inline constexpr uint64_t kFeatureIndirectDesc = 1ULL << 28;
inline constexpr uint64_t kFeatureEventIdx = 1ULL << 29;
inline constexpr uint64_t kFeatureVersion1 = 1ULL << 32;

// Config-space byte layout at the start of the shared region.
struct ConfigLayout {
  uint64_t base = 0;
  uint64_t StatusOffset() const { return base + 0; }
  uint64_t DeviceFeaturesOffset() const { return base + 8; }
  uint64_t DriverFeaturesOffset() const { return base + 16; }
  uint64_t MacOffset() const { return base + 24; }
  uint64_t MtuOffset() const { return base + 30; }
  // Reset epochs (recovery protocol): the guest bumps ResetEpoch before
  // re-negotiating after a watchdog-triggered ring reset; an honest device
  // adopts it (zeroing its virtqueue shadows) and echoes DeviceEpoch.
  uint64_t ResetEpochOffset() const { return base + 32; }
  uint64_t DeviceEpochOffset() const { return base + 40; }
  static constexpr uint64_t kSize = 64;
};

// Result of a completed negotiation, snapshotted guest-side.
struct NegotiatedConfig {
  uint64_t features = 0;
  cionet::MacAddress mac;
  uint16_t mtu = 1500;
};

// Guest-side negotiation. `restrict_features` masks off the feature bits the
// hardening guidance says to refuse (indirect descriptors, event idx) — the
// "restrict features" commit category of Figure 3/4.
ciobase::Result<NegotiatedConfig> DriverNegotiate(
    ciotee::SharedRegion* region, const ConfigLayout& layout,
    uint64_t wanted_features, bool restrict_features,
    ciohost::ObservabilityLog* observability);

// Host-side: initializes the device's half of config space.
void DeviceInitConfig(ciotee::SharedRegion* region, const ConfigLayout& layout,
                      uint64_t offered_features, cionet::MacAddress mac,
                      uint16_t mtu);

// Host-side: reacts to driver status writes (accepts/rejects FEATURES_OK).
// Returns the final status byte after the device's reaction.
uint8_t DeviceProcessStatus(ciotee::SharedRegion* region,
                            const ConfigLayout& layout,
                            uint64_t offered_features);

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_NEGOTIATION_H_
