#include "src/virtio/virtqueue.h"

#include <algorithm>
#include <cassert>

#include "src/base/bits.h"

namespace ciovirtio {

// --- Driver half --------------------------------------------------------------

VirtqueueDriver::VirtqueueDriver(ciotee::SharedRegion* region,
                                 VirtqLayout layout, ciobase::CostModel* costs)
    : region_(region), layout_(layout), costs_(costs) {
  assert(ciobase::IsPowerOfTwo(layout.queue_size));
  for (uint16_t i = 0; i < layout.queue_size; ++i) {
    free_.push_back(i);
  }
}

void VirtqueueDriver::WriteDesc(uint16_t i, const VirtqDesc& desc) {
  // `i` comes from the guest's own allocator and is always in range.
  uint64_t off = layout_.DescOffset(i);
  region_->GuestWriteLe64(off, desc.addr);
  region_->GuestWriteLe32(off + 8, desc.len);
  region_->GuestWriteLe16(off + 12, desc.flags);
  region_->GuestWriteLe16(off + 14, desc.next);
}

VirtqDesc VirtqueueDriver::ReadDescOnce(uint16_t i) {
  // NOTE: `i` is NOT masked here — callers decide whether to validate it
  // (hardened) or pass a host-controlled completion id through raw
  // (unhardened baseline). An out-of-range id turns into an out-of-bounds
  // shared-memory access recorded by the TEE memory model.
  uint64_t off = layout_.DescOffset(i);
  uint8_t raw[16];
  region_->GuestRead(off, raw);  // ONE fetch: one TOCTOU window
  VirtqDesc desc;
  desc.addr = ciobase::LoadLe64(raw);
  desc.len = ciobase::LoadLe32(raw + 8);
  desc.flags = ciobase::LoadLe16(raw + 12);
  desc.next = ciobase::LoadLe16(raw + 14);
  return desc;
}

VirtqDesc VirtqueueDriver::ReadDescUnsafe(uint16_t i) {
  uint64_t off = layout_.DescOffset(i);  // unvalidated, like the hardened
                                         // variant above — see its NOTE
  // Four separate fetches — each one is a fresh TOCTOU window, like parsing
  // a struct in place through a pointer into shared memory.
  VirtqDesc desc;
  desc.addr = region_->GuestReadLe64(off);
  desc.len = region_->GuestReadLe32(off + 8);
  desc.flags = region_->GuestReadLe16(off + 12);
  desc.next = region_->GuestReadLe16(off + 14);
  return desc;
}

void VirtqueueDriver::PostAvail(uint16_t head) {
  region_->GuestWriteLe16(
      layout_.AvailRing(static_cast<uint16_t>(
          avail_idx_ & (layout_.queue_size - 1))),
      head);
  ++avail_idx_;
  region_->GuestWriteLe16(layout_.AvailIdx(), avail_idx_);
}

uint16_t VirtqueueDriver::UsedPending() {
  costs_->ChargeRingPoll();
  uint16_t used_idx = region_->GuestReadLe16(layout_.UsedIdx());
  return static_cast<uint16_t>(used_idx - last_used_idx_);
}

std::optional<UsedElem> VirtqueueDriver::PopUsed(bool single_fetch) {
  if (UsedPending() == 0) {
    return std::nullopt;
  }
  uint64_t off = layout_.UsedRing(static_cast<uint16_t>(
      last_used_idx_ & (layout_.queue_size - 1)));
  UsedElem elem;
  if (single_fetch) {
    uint8_t raw[8];
    region_->GuestRead(off, raw);
    elem.id = ciobase::LoadLe32(raw);
    elem.len = ciobase::LoadLe32(raw + 4);
  } else {
    elem.id = region_->GuestReadLe32(off);
    elem.len = region_->GuestReadLe32(off + 4);
  }
  ++last_used_idx_;
  return elem;
}

size_t VirtqueueDriver::PopUsedMany(bool single_fetch, size_t max,
                                    std::vector<UsedElem>& out) {
  uint16_t pending = UsedPending();  // one ring poll per batch
  size_t take = std::min<size_t>(
      {static_cast<size_t>(pending), max,
       static_cast<size_t>(layout_.queue_size)});
  for (size_t k = 0; k < take; ++k) {
    uint64_t off = layout_.UsedRing(static_cast<uint16_t>(
        last_used_idx_ & (layout_.queue_size - 1)));
    UsedElem elem;
    if (single_fetch) {
      uint8_t raw[8];
      region_->GuestRead(off, raw);
      elem.id = ciobase::LoadLe32(raw);
      elem.len = ciobase::LoadLe32(raw + 4);
    } else {
      elem.id = region_->GuestReadLe32(off);
      elem.len = region_->GuestReadLe32(off + 4);
    }
    ++last_used_idx_;
    out.push_back(elem);
  }
  return take;
}

std::optional<uint16_t> VirtqueueDriver::AllocDesc() {
  if (free_.empty()) {
    return std::nullopt;
  }
  uint16_t i = free_.front();
  free_.pop_front();
  return i;
}

void VirtqueueDriver::FreeDesc(uint16_t i) { free_.push_back(i); }

void VirtqueueDriver::Reset() {
  avail_idx_ = 0;
  last_used_idx_ = 0;
  free_.clear();
  for (uint16_t i = 0; i < layout_.queue_size; ++i) {
    free_.push_back(i);
  }
  region_->GuestWriteLe16(layout_.AvailIdx(), 0);
  // The used idx is device-owned but lives in shared memory: zero it so the
  // old epoch's completions never read as pending. An honest device adopts
  // the epoch and republishes from zero; a hostile one resumes lying, which
  // the validation path absorbs as before.
  region_->GuestWriteLe16(layout_.UsedIdx(), 0);
}

// --- Device half ---------------------------------------------------------------

VirtqueueDevice::VirtqueueDevice(ciotee::SharedRegion* region,
                                 VirtqLayout layout,
                                 ciohost::Adversary* adversary)
    : region_(region), layout_(layout), adversary_(adversary) {}

VirtqDesc VirtqueueDevice::ReadDesc(uint16_t i) {
  uint64_t off = layout_.DescOffset(static_cast<uint16_t>(
      i & (layout_.queue_size - 1)));
  uint8_t raw[16];
  region_->HostRead(off, raw);
  VirtqDesc desc;
  desc.addr = ciobase::LoadLe64(raw);
  desc.len = ciobase::LoadLe32(raw + 8);
  desc.flags = ciobase::LoadLe16(raw + 12);
  desc.next = ciobase::LoadLe16(raw + 14);
  return desc;
}

std::optional<uint16_t> VirtqueueDevice::PopAvail() {
  uint16_t avail_idx = region_->HostReadLe16(layout_.AvailIdx());
  if (avail_idx == last_avail_idx_) {
    return std::nullopt;
  }
  uint16_t head = region_->HostReadLe16(layout_.AvailRing(
      static_cast<uint16_t>(last_avail_idx_ & (layout_.queue_size - 1))));
  ++last_avail_idx_;
  return head;
}

std::vector<VirtqDesc> VirtqueueDevice::ReadChain(uint16_t head) {
  std::vector<VirtqDesc> chain;
  uint16_t i = head;
  // Bound chain walks to the queue size; a real device must too, or a
  // malicious *driver* could loop it (mutual distrust cuts both ways).
  for (uint16_t hops = 0; hops < layout_.queue_size; ++hops) {
    VirtqDesc desc = ReadDesc(i);
    chain.push_back(desc);
    if ((desc.flags & kDescFlagNext) == 0) {
      break;
    }
    i = desc.next;
  }
  return chain;
}

void VirtqueueDevice::PushUsed(uint32_t id, uint32_t len,
                               uint32_t buffer_capacity) {
  UsedElem elem{id, len};
  if (adversary_ != nullptr) {
    elem.len = adversary_->MutateUsedLen(len, buffer_capacity);
    if (adversary_->ShouldReplayCompletion() && last_pushed_.has_value()) {
      elem = *last_pushed_;  // temporal violation: stale completion again
    }
  }
  uint64_t off = layout_.UsedRing(static_cast<uint16_t>(
      used_idx_ & (layout_.queue_size - 1)));
  region_->HostWriteLe32(off, elem.id);
  region_->HostWriteLe32(off + 4, elem.len);
  ++used_idx_;
  uint16_t published = used_idx_;
  if (adversary_ != nullptr) {
    published = adversary_->MutatePublishedIndex(used_idx_);
  }
  region_->HostWriteLe16(layout_.UsedIdx(), published);
  last_pushed_ = elem;
}

void VirtqueueDevice::Reset() {
  last_avail_idx_ = 0;
  used_idx_ = 0;
  last_pushed_.reset();
  region_->HostWriteLe16(layout_.UsedIdx(), 0);
}

}  // namespace ciovirtio
