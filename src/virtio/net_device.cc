#include "src/virtio/net_device.h"

#include "src/base/bits.h"

namespace ciovirtio {

VirtioNetLayout VirtioNetLayout::Make(uint16_t queue_size,
                                      size_t pool_slot_size,
                                      size_t pool_slot_count) {
  VirtioNetLayout layout;
  layout.config.base = 0;
  layout.tx.base = ConfigLayout::kSize;
  layout.tx.queue_size = queue_size;
  layout.rx.base = ciobase::AlignUp(layout.tx.base + layout.tx.TotalSize(), 64);
  layout.rx.queue_size = queue_size;
  layout.pool_offset =
      ciobase::AlignUp(layout.rx.base + layout.rx.TotalSize(), 4096);
  layout.pool_slot_size = pool_slot_size;
  layout.pool_slot_count = pool_slot_count;
  return layout;
}

VirtioNetDevice::VirtioNetDevice(ciotee::SharedRegion* region,
                                 VirtioNetLayout layout,
                                 cionet::Fabric* fabric, std::string name,
                                 cionet::MacAddress mac, uint16_t mtu,
                                 uint64_t offered_features,
                                 ciohost::Adversary* adversary,
                                 ciohost::ObservabilityLog* observability,
                                 ciobase::SimClock* clock)
    : region_(region),
      layout_(layout),
      tx_(region, layout.tx, adversary),
      rx_(region, layout.rx, adversary),
      fabric_(fabric),
      endpoint_(fabric->Attach(std::move(name), mac)),
      mac_(mac),
      offered_features_(offered_features),
      adversary_(adversary),
      observability_(observability),
      clock_(clock) {
  DeviceInitConfig(region, layout.config, offered_features, mac, mtu);
}

void VirtioNetDevice::Kick() {
  ++stats_.kicks;
  if (observability_ != nullptr) {
    observability_->Record(ciohost::ObsCategory::kDoorbell, clock_->now_ns(),
                           "virtqueue kick");
  }
  Poll();
}

void VirtioNetDevice::Poll() {
  DeviceProcessStatus(region_, layout_.config, offered_features_);
  DrainTx();
  FillRx();
}

void VirtioNetDevice::DrainTx() {
  for (;;) {
    std::optional<uint16_t> head = tx_.PopAvail();
    if (!head.has_value()) {
      break;
    }
    std::vector<VirtqDesc> chain = tx_.ReadChain(*head);
    ciobase::Buffer frame;
    for (const VirtqDesc& desc : chain) {
      if ((desc.flags & kDescFlagWrite) != 0) {
        continue;  // device-writable descriptors carry no TX payload
      }
      size_t old_size = frame.size();
      frame.resize(old_size + desc.len);
      region_->HostRead(desc.addr, ciobase::MutableByteSpan(
                                       frame.data() + old_size, desc.len));
    }
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(frame);
    }
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame.size(), "tx frame");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "tx frame");
    }
    ++stats_.frames_tx;
    (void)fabric_->Inject(endpoint_, frame);
    tx_.PushUsed(*head, static_cast<uint32_t>(frame.size()),
                 static_cast<uint32_t>(frame.size()));
  }
}

void VirtioNetDevice::FillRx() {
  for (;;) {
    auto frame = fabric_->Poll(endpoint_);
    if (!frame.ok()) {
      break;
    }
    std::optional<uint16_t> head = rx_.PopAvail();
    if (!head.has_value()) {
      ++stats_.rx_dropped_no_buffer;
      continue;
    }
    VirtqDesc desc = rx_.ReadDesc(*head);
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(*frame);
    }
    uint32_t n = std::min<uint32_t>(static_cast<uint32_t>(frame->size()),
                                    desc.len);
    region_->HostWrite(desc.addr, ciobase::ByteSpan(frame->data(), n));
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame->size(), "rx frame");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "rx frame");
    }
    ++stats_.frames_rx;
    rx_.PushUsed(*head, n, desc.len);
  }
}

}  // namespace ciovirtio
