#include "src/virtio/net_device.h"

#include "src/base/bits.h"

namespace ciovirtio {

VirtioNetLayout VirtioNetLayout::Make(uint16_t queue_size,
                                      size_t pool_slot_size,
                                      size_t pool_slot_count) {
  VirtioNetLayout layout;
  layout.config.base = 0;
  layout.tx.base = ConfigLayout::kSize;
  layout.tx.queue_size = queue_size;
  layout.rx.base = ciobase::AlignUp(layout.tx.base + layout.tx.TotalSize(), 64);
  layout.rx.queue_size = queue_size;
  layout.pool_offset =
      ciobase::AlignUp(layout.rx.base + layout.rx.TotalSize(), 4096);
  layout.pool_slot_size = pool_slot_size;
  layout.pool_slot_count = pool_slot_count;
  return layout;
}

VirtioNetDevice::VirtioNetDevice(ciotee::SharedRegion* region,
                                 VirtioNetLayout layout,
                                 cionet::Fabric* fabric, std::string name,
                                 cionet::MacAddress mac, uint16_t mtu,
                                 uint64_t offered_features,
                                 ciohost::Adversary* adversary,
                                 ciohost::ObservabilityLog* observability,
                                 ciobase::SimClock* clock)
    : region_(region),
      layout_(layout),
      tx_(region, layout.tx, adversary),
      rx_(region, layout.rx, adversary),
      fabric_(fabric),
      endpoint_(fabric->Attach(std::move(name), mac)),
      mac_(mac),
      offered_features_(offered_features),
      adversary_(adversary),
      observability_(observability),
      clock_(clock) {
  DeviceInitConfig(region, layout.config, offered_features, mac, mtu);
}

bool VirtioNetDevice::Faulted(ciohost::FaultStrategy strategy) const {
  return adversary_ != nullptr &&
         adversary_->FaultActive(strategy, clock_->now_ns());
}

void VirtioNetDevice::Kick() {
  if (Faulted(ciohost::FaultStrategy::kSwallowDoorbell) ||
      Faulted(ciohost::FaultStrategy::kLinkKill)) {
    ++stats_.kicks_swallowed;
    return;
  }
  ++stats_.kicks;
  if (observability_ != nullptr) {
    observability_->Record(ciohost::ObsCategory::kDoorbell, clock_->now_ns(),
                           "virtqueue kick");
  }
  Poll();
}

void VirtioNetDevice::Poll() {
  // A killed or stalled device touches nothing — not even the reset epoch —
  // so a guest-side reattach goes unanswered until the fault clears.
  if (Faulted(ciohost::FaultStrategy::kLinkKill) ||
      Faulted(ciohost::FaultStrategy::kStallCounters)) {
    return;
  }
  AdoptGuestEpoch();
  DeviceProcessStatus(region_, layout_.config, offered_features_);
  DrainTx();
  FillRx();
  if (Faulted(ciohost::FaultStrategy::kGarbageCounters)) {
    // Publish absurd used indices on both rings; the cells are rewritten
    // honestly (from the device shadows) once the fault window closes.
    region_->HostWriteLe16(layout_.tx.UsedIdx(), 0xffff);
    region_->HostWriteLe16(layout_.rx.UsedIdx(), 0xffff);
  }
}

void VirtioNetDevice::AdoptGuestEpoch() {
  uint64_t guest_epoch =
      region_->HostReadLe64(layout_.config.ResetEpochOffset());
  if (guest_epoch == epoch_) {
    return;
  }
  // The guest reset and is renegotiating: forget both rings' shadows and
  // echo the epoch so the reattach is observable.
  epoch_ = guest_epoch;
  tx_.Reset();
  rx_.Reset();
  region_->HostWriteLe64(layout_.config.DeviceEpochOffset(), epoch_);
  ++stats_.epoch_adoptions;
}

void VirtioNetDevice::DrainTx() {
  // Per-poll work budget: an honest driver never has more than queue_size
  // submissions outstanding, so the cap only bites when the avail index was
  // forged (a hostile or fuzzed guest-side counter must not be able to spin
  // the device model for an unbounded number of iterations in one poll).
  for (uint16_t budget = 0; budget < layout_.tx.queue_size; ++budget) {
    std::optional<uint16_t> head = tx_.PopAvail();
    if (!head.has_value()) {
      break;
    }
    std::vector<VirtqDesc> chain = tx_.ReadChain(*head);
    ciobase::Buffer frame;
    for (const VirtqDesc& desc : chain) {
      if ((desc.flags & kDescFlagWrite) != 0) {
        continue;  // device-writable descriptors carry no TX payload
      }
      // Bound the per-descriptor DMA by the pool slot geometry: an honest
      // driver never posts a descriptor longer than one pool slot, so the
      // clamp only bites forged lengths — which must not buy a multi-GB
      // host-side allocation and copy.
      uint32_t len = std::min<uint32_t>(
          desc.len, static_cast<uint32_t>(layout_.pool_slot_size));
      size_t old_size = frame.size();
      frame.resize(old_size + len);
      region_->HostRead(desc.addr, ciobase::MutableByteSpan(
                                       frame.data() + old_size, len));
    }
    if (adversary_ != nullptr) {
      adversary_->MaybeCorruptPayload(frame);
    }
    if (observability_ != nullptr) {
      observability_->Record(ciohost::ObsCategory::kPacketLength,
                             frame.size(), "tx frame");
      observability_->Record(ciohost::ObsCategory::kPacketTiming,
                             clock_->now_ns(), "tx frame");
    }
    ++stats_.frames_tx;
    if (Faulted(ciohost::FaultStrategy::kDropFrames)) {
      ++stats_.frames_dropped_fault;  // completion claimed, frame gone
    } else {
      (void)fabric_->Inject(endpoint_, frame);
      if (Faulted(ciohost::FaultStrategy::kDuplicateFrames)) {
        (void)fabric_->Inject(endpoint_, frame);
        ++stats_.frames_duplicated_fault;
      }
    }
    tx_.PushUsed(*head, static_cast<uint32_t>(frame.size()),
                 static_cast<uint32_t>(frame.size()));
  }
}

void VirtioNetDevice::FillRx() {
  for (;;) {
    auto frame = fabric_->Poll(endpoint_);
    if (!frame.ok()) {
      break;
    }
    if (Faulted(ciohost::FaultStrategy::kDropFrames)) {
      ++stats_.frames_dropped_fault;
      continue;
    }
    int copies = Faulted(ciohost::FaultStrategy::kDuplicateFrames) ? 2 : 1;
    bool torn = Faulted(ciohost::FaultStrategy::kTornWrite);
    for (int c = 0; c < copies; ++c) {
      std::optional<uint16_t> head = rx_.PopAvail();
      if (!head.has_value()) {
        ++stats_.rx_dropped_no_buffer;
        break;
      }
      if (c > 0) {
        ++stats_.frames_duplicated_fault;
      }
      VirtqDesc desc = rx_.ReadDesc(*head);
      if (adversary_ != nullptr) {
        adversary_->MaybeCorruptPayload(*frame);
      }
      uint32_t n = std::min<uint32_t>(static_cast<uint32_t>(frame->size()),
                                      desc.len);
      // Torn write: claim `n` bytes but land only the first half; the tail
      // is stale pool memory. TCP's checksum catches it downstream.
      uint32_t written = torn ? n / 2 : n;
      region_->HostWrite(desc.addr, ciobase::ByteSpan(frame->data(), written));
      if (observability_ != nullptr) {
        observability_->Record(ciohost::ObsCategory::kPacketLength,
                               frame->size(), "rx frame");
        observability_->Record(ciohost::ObsCategory::kPacketTiming,
                               clock_->now_ns(), "rx frame");
      }
      ++stats_.frames_rx;
      rx_.PushUsed(*head, n, desc.len);
    }
  }
}

}  // namespace ciovirtio
