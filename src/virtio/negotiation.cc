#include "src/virtio/negotiation.h"

#include "src/base/coverage.h"

namespace ciovirtio {

void DeviceInitConfig(ciotee::SharedRegion* region, const ConfigLayout& layout,
                      uint64_t offered_features, cionet::MacAddress mac,
                      uint16_t mtu) {
  region->HostWriteU8(layout.StatusOffset(), 0);
  region->HostWriteLe64(layout.DeviceFeaturesOffset(), offered_features);
  region->HostWrite(layout.MacOffset(), mac.bytes);
  region->HostWriteLe16(layout.MtuOffset(), mtu);
}

uint8_t DeviceProcessStatus(ciotee::SharedRegion* region,
                            const ConfigLayout& layout,
                            uint64_t offered_features) {
  uint8_t status = 0;
  region->HostRead(layout.StatusOffset(), ciobase::MutableByteSpan(&status, 1));
  if ((status & kStatusFeaturesOk) != 0) {
    uint64_t driver_features =
        region->HostReadLe64(layout.DriverFeaturesOffset());
    if ((driver_features & ~offered_features) != 0) {
      // Driver asked for features we did not offer: clear FEATURES_OK.
      status = static_cast<uint8_t>(status & ~kStatusFeaturesOk);
      region->HostWriteU8(layout.StatusOffset(), status);
    }
  }
  return status;
}

ciobase::Result<NegotiatedConfig> DriverNegotiate(
    ciotee::SharedRegion* region, const ConfigLayout& layout,
    uint64_t wanted_features, bool restrict_features,
    ciohost::ObservabilityLog* observability) {
  auto observe = [&](const char* what, uint64_t value) {
    if (observability != nullptr) {
      observability->Record(ciohost::ObsCategory::kConfigField, value, what);
    }
  };

  // Step 1-3: RESET, ACKNOWLEDGE, DRIVER. Each is a separate, stateful,
  // host-visible transition.
  region->GuestWriteU8(layout.StatusOffset(), 0);
  observe("status=RESET", 0);
  region->GuestWriteU8(layout.StatusOffset(), kStatusAcknowledge);
  observe("status=ACK", kStatusAcknowledge);
  region->GuestWriteU8(layout.StatusOffset(),
                       kStatusAcknowledge | kStatusDriver);
  observe("status=DRIVER", kStatusAcknowledge | kStatusDriver);

  // Step 4: read device features (host-controlled; this is a fetch of
  // attacker data) and write back the subset we accept.
  uint64_t device_features =
      region->GuestReadLe64(layout.DeviceFeaturesOffset());
  observe("read device_features", device_features);
  uint64_t accept = device_features & wanted_features;
  if (restrict_features) {
    // Hardening guidance: refuse the complex transport variants.
    accept &= ~(kFeatureIndirectDesc | kFeatureEventIdx | kFeatureMrgRxbuf);
  }
  region->GuestWriteLe64(layout.DriverFeaturesOffset(), accept);
  observe("write driver_features", accept);

  // Step 5: FEATURES_OK, then re-read to check the device kept it. This
  // read-back is itself a second fetch of host-controlled state: the window
  // between it and every later use of `accept` is exactly the ordering
  // vulnerability the paper describes. We snapshot everything we will rely
  // on *now*, in private memory, and never re-read it.
  region->GuestWriteU8(layout.StatusOffset(),
                       kStatusAcknowledge | kStatusDriver | kStatusFeaturesOk);
  observe("status=FEATURES_OK",
          kStatusAcknowledge | kStatusDriver | kStatusFeaturesOk);
  uint8_t status = region->GuestReadU8(layout.StatusOffset());
  if ((status & kStatusFeaturesOk) == 0) {
    region->GuestWriteU8(layout.StatusOffset(),
                         static_cast<uint8_t>(status | kStatusFailed));
    CIO_COV("virtio.negotiate.features_rejected",
            ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("device rejected features");
  }
  // Strict status check: an honest device either clears FEATURES_OK or
  // leaves the byte exactly as we wrote it. NEEDS_RESET, FAILED, a premature
  // DRIVER_OK, or garbage bits mean the host is improvising mid-dance —
  // refuse rather than carry hostile state into the data plane.
  constexpr uint8_t kExpectedAfterFeaturesOk =
      kStatusAcknowledge | kStatusDriver | kStatusFeaturesOk;
  if (status != kExpectedAfterFeaturesOk) {
    CIO_COV("virtio.negotiate.status_garbage",
            ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("unexpected status bits after FEATURES_OK");
  }
  // Mid-flight re-negotiation check: the feature words are host-owned, so a
  // hostile device can advertise one feature set, watch us accept it, then
  // swap the words before we finish. We never *use* a re-read (the snapshot
  // in `accept` is authoritative), but a changed word is direct evidence of
  // an ordering attack — surface it as a typed violation instead of silently
  // proceeding on the snapshot.
  uint64_t device_features_again =
      region->GuestReadLe64(layout.DeviceFeaturesOffset());
  if (device_features_again != device_features) {
    observe("device_features changed mid-negotiation", device_features_again);
    CIO_COV("virtio.negotiate.features_changed",
            ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("device features changed mid-negotiation");
  }

  NegotiatedConfig config;
  config.features = accept;
  if ((accept & kFeatureMac) != 0) {
    region->GuestRead(layout.MacOffset(),
                      ciobase::MutableByteSpan(config.mac.bytes.data(), 6));
    observe("read mac", 0);
  }
  if ((accept & kFeatureMtu) != 0) {
    uint16_t mtu = region->GuestReadLe16(layout.MtuOffset());
    observe("read mtu", mtu);
    // Validate host-supplied MTU against sane bounds ("add checks").
    if (mtu < 68 || mtu > 9000) {
      CIO_COV("virtio.negotiate.hostile_mtu",
              ciobase::StatusCode::kHostViolation);
      return ciobase::HostViolation("hostile MTU");
    }
    config.mtu = mtu;
  }

  // Step 6: DRIVER_OK, then one read-back. The status byte is the host's
  // lever for forcing re-negotiation (NEEDS_RESET) — a driver that polls it
  // later would hand the host a control loop. We read it exactly once here,
  // require the exact value we wrote, and never consult it again.
  constexpr uint8_t kFinalStatus = kStatusAcknowledge | kStatusDriver |
                                   kStatusFeaturesOk | kStatusDriverOk;
  region->GuestWriteU8(layout.StatusOffset(), kFinalStatus);
  observe("status=DRIVER_OK", 0);
  if (uint8_t final_status = region->GuestReadU8(layout.StatusOffset());
      final_status != kFinalStatus) {
    CIO_COV("virtio.negotiate.driverok_clobbered",
            ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("status clobbered at DRIVER_OK");
  }
  CIO_COV("virtio.negotiate.ok", ciobase::StatusCode::kOk);
  return config;
}

}  // namespace ciovirtio
