// Split virtqueue (VirtIO 1.x "split" format): descriptor table, available
// ring, used ring, laid out in host-visible shared memory.
//
// This is the baseline data transport the paper studies in §2.5. Both halves
// are implemented: the guest driver side (posts buffers, reaps completions)
// and the host device side (pops available buffers, pushes used entries).
// The guest side can run *unhardened* — parsing shared structures in place,
// trusting completion ids and lengths, exactly like pre-hardening Linux
// drivers — or *hardened* with the retrofit mitigations that the kernel
// community has been adding (validate ids, clamp lengths, single-fetch
// snapshots). The difference in both vulnerability and cost is what
// bench_virtio_baseline and bench_attack_resilience measure.
//
// Layout of one virtqueue at `base` within the shared region (all LE):
//   desc table : queue_size * 16 B   { addr u64, len u32, flags u16, next u16 }
//   avail ring : 4 + queue_size * 2  { flags u16, idx u16, ring[] u16 }
//   used ring  : 4 + queue_size * 8  { flags u16, idx u16, ring[] {id u32, len u32} }

#ifndef SRC_VIRTIO_VIRTQUEUE_H_
#define SRC_VIRTIO_VIRTQUEUE_H_

#include <deque>
#include <optional>
#include <vector>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/hostsim/adversary.h"
#include "src/tee/shared_region.h"

namespace ciovirtio {

inline constexpr uint16_t kDescFlagNext = 1;
inline constexpr uint16_t kDescFlagWrite = 2;     // device-writable buffer
inline constexpr uint16_t kDescFlagIndirect = 4;

struct VirtqDesc {
  uint64_t addr = 0;  // offset within the shared region (stands in for GPA)
  uint32_t len = 0;
  uint16_t flags = 0;
  uint16_t next = 0;
};

// Byte layout of one virtqueue inside a shared region.
struct VirtqLayout {
  uint64_t base = 0;
  uint16_t queue_size = 0;  // power of two

  uint64_t DescOffset(uint16_t i) const { return base + 16ULL * i; }
  uint64_t AvailBase() const { return base + 16ULL * queue_size; }
  uint64_t AvailFlags() const { return AvailBase(); }
  uint64_t AvailIdx() const { return AvailBase() + 2; }
  uint64_t AvailRing(uint16_t i) const { return AvailBase() + 4 + 2ULL * i; }
  uint64_t UsedBase() const { return AvailBase() + 4 + 2ULL * queue_size; }
  uint64_t UsedFlags() const { return UsedBase(); }
  uint64_t UsedIdx() const { return UsedBase() + 2; }
  uint64_t UsedRing(uint16_t i) const { return UsedBase() + 4 + 8ULL * i; }
  uint64_t TotalSize() const { return UsedBase() + 4 + 8ULL * queue_size - base; }
};

struct UsedElem {
  uint32_t id = 0;
  uint32_t len = 0;
};

// --- Guest driver half -------------------------------------------------------

class VirtqueueDriver {
 public:
  VirtqueueDriver(ciotee::SharedRegion* region, VirtqLayout layout,
                  ciobase::CostModel* costs);

  uint16_t queue_size() const { return layout_.queue_size; }
  const VirtqLayout& layout() const { return layout_; }

  // Writes descriptor `i` (guest-owned until posted).
  void WriteDesc(uint16_t i, const VirtqDesc& desc);
  // Reads descriptor `i` with a single fetch into private memory.
  VirtqDesc ReadDescOnce(uint16_t i);
  // Reads descriptor `i` the unhardened way: each field is a separate fetch
  // from shared memory (independent TOCTOU windows).
  VirtqDesc ReadDescUnsafe(uint16_t i);

  // Posts a descriptor chain head on the available ring and bumps avail idx.
  void PostAvail(uint16_t head);

  // Number of new used entries according to the device (unvalidated read of
  // the shared used idx).
  uint16_t UsedPending();

  // Pops the next used entry. `single_fetch` snapshots the entry once;
  // otherwise the fields are re-read (double fetch).
  std::optional<UsedElem> PopUsed(bool single_fetch);

  // Pops up to `max` used entries with ONE poll/read of the shared used
  // index for the whole batch (the per-entry ring reads are unchanged, so
  // each entry still gets its own single-fetch snapshot). Appends to `out`
  // and returns the number popped. Bounded by queue_size per call, so an
  // index-storming host cannot force an unbounded loop.
  size_t PopUsedMany(bool single_fetch, size_t max, std::vector<UsedElem>& out);

  // Free-descriptor bookkeeping (guest-private).
  std::optional<uint16_t> AllocDesc();
  void FreeDesc(uint16_t i);
  size_t free_descs() const { return free_.size(); }

  // Ring reset (recovery protocol): zeroes the private shadows, rebuilds
  // the free list, and zeroes the shared avail/used index cells so nothing
  // from the old epoch reads as pending. The device half must reset too
  // (it adopts the guest's reset epoch) or its stale shadows would make it
  // reprocess or skip entries.
  void Reset();

 private:
  ciotee::SharedRegion* region_;
  VirtqLayout layout_;
  ciobase::CostModel* costs_;
  uint16_t avail_idx_ = 0;      // guest-private shadow
  uint16_t last_used_idx_ = 0;  // guest-private shadow
  // FIFO free list: maximizes the distance before a descriptor id is
  // recycled, so stale (replayed) completion ids are detectable instead of
  // aliasing a freshly reposted buffer (the ABA problem).
  std::deque<uint16_t> free_;
};

// --- Host device half --------------------------------------------------------

class VirtqueueDevice {
 public:
  VirtqueueDevice(ciotee::SharedRegion* region, VirtqLayout layout,
                  ciohost::Adversary* adversary);

  // Next available chain head, if any (device-private shadow of avail idx).
  std::optional<uint16_t> PopAvail();

  // Follows a descriptor chain from `head` (bounded), returning descriptors.
  std::vector<VirtqDesc> ReadChain(uint16_t head);

  // Publishes a completion. The adversary may inflate `len`, replay a stale
  // entry, or storm the published index (behavioral attacks).
  void PushUsed(uint32_t id, uint32_t len, uint32_t buffer_capacity);

  VirtqDesc ReadDesc(uint16_t i);

  // Device half of a ring reset: forget every shadow and zero the shared
  // used index (the cell this half owns).
  void Reset();

 private:
  ciotee::SharedRegion* region_;
  VirtqLayout layout_;
  ciohost::Adversary* adversary_;
  uint16_t last_avail_idx_ = 0;
  uint16_t used_idx_ = 0;
  std::optional<UsedElem> last_pushed_;
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_VIRTQUEUE_H_
