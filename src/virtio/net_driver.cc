#include "src/virtio/net_driver.h"

#include "src/base/coverage.h"
#include "src/base/log.h"
#include "src/prof/profiler.h"

namespace ciovirtio {

namespace {

// Keep runaway host-claimed lengths from allocating unbounded memory in the
// unhardened path; real exploited drivers would fault or corrupt instead.
constexpr size_t kUnhardenedLenCap = 1 << 20;

constexpr uint64_t kWantedFeatures = kFeatureMac | kFeatureMtu |
                                     kFeatureCsum | kFeatureIndirectDesc |
                                     kFeatureEventIdx | kFeatureVersion1;

}  // namespace

VirtioNetDriver::VirtioNetDriver(ciotee::SharedRegion* region,
                                 VirtioNetLayout layout, KickTarget* device,
                                 ciobase::CostModel* costs,
                                 HardeningOptions hardening,
                                 ciohost::ObservabilityLog* observability,
                                 const ciobase::RecoveryConfig& recovery)
    : region_(region),
      layout_(layout),
      tx_(region, layout.tx, costs),
      rx_(region, layout.rx, costs),
      pool_(region, layout.pool_offset, layout.pool_slot_size,
            layout.pool_slot_count, costs),
      device_(device),
      costs_(costs),
      hardening_(hardening),
      observability_(observability),
      recovery_(recovery),
      watchdog_(recovery) {}

ciobase::Status VirtioNetDriver::Negotiate() {
  auto config = DriverNegotiate(region_, layout_.config, kWantedFeatures,
                                hardening_.restrict_features, observability_);
  if (!config.ok()) {
    return config.status();
  }
  config_ = *config;
  negotiated_ = true;
  // Pre-post RX buffers: half the ring (so freed descriptor ids sit in the
  // FIFO free list a while before reuse — see virtqueue.h on ABA), bounded
  // by half the pool (the rest is for TX).
  size_t rx_buffers = std::min<size_t>(layout_.pool_slot_count / 2,
                                       layout_.rx.queue_size / 2);
  for (size_t i = 0; i < rx_buffers; ++i) {
    PostRxBuffer();
  }
  if (!hardening_.polling) {
    costs_->ChargeNotify();
    device_->Kick();
  }
  return ciobase::OkStatus();
}

void VirtioNetDriver::PostRxBuffer() {
  auto desc_id = rx_.AllocDesc();
  if (!desc_id.has_value()) {
    return;
  }
  auto slot = pool_.AllocSlot();
  if (!slot.ok()) {
    rx_.FreeDesc(*desc_id);
    return;
  }
  VirtqDesc desc;
  desc.addr = *slot;
  desc.len = static_cast<uint32_t>(pool_.slot_size());
  desc.flags = kDescFlagWrite;
  rx_.WriteDesc(*desc_id, desc);
  rx_.PostAvail(*desc_id);
  rx_outstanding_[*desc_id] = *slot;
  ++stats_.rx_reposts;
}

ciobase::Result<size_t> VirtioNetDriver::SendFrames(
    std::span<const ciobase::ByteSpan> frames) {
  if (!negotiated_) {
    return ciobase::FailedPrecondition("driver not negotiated");
  }
  if (frames.empty()) {
    return size_t{0};
  }
  CIO_PROF_SCOPE(costs_->profiler(), "virtio.tx");
  // Reap once up front for the whole batch instead of once per frame. The
  // device cannot produce new completions mid-batch (it runs on kicks or
  // external polls), so one reap sees everything a per-frame loop would.
  ReapTxCompletions();
  size_t sent = 0;
  ciobase::Status reject = ciobase::OkStatus();
  for (ciobase::ByteSpan frame : frames) {
    if (frame.size() > config_.mtu + cionet::kEthernetHeaderSize ||
        frame.size() > pool_.slot_size()) {
      reject = ciobase::InvalidArgument("frame exceeds MTU/pool slot");
      break;
    }
    auto desc_id = tx_.AllocDesc();
    if (!desc_id.has_value()) {
      reject = ciobase::ResourceExhausted("tx ring full");
      break;
    }
    auto slot = pool_.AllocSlot();
    if (!slot.ok()) {
      tx_.FreeDesc(*desc_id);
      reject = slot.status();
      break;
    }
    // The bounce-out copy into shared memory. In a CVM this is mandatory
    // (the device cannot read encrypted memory); SWIOTLB merely makes it
    // implicit. Here it is explicit and charged.
    if (ciobase::Status copied = pool_.CopyOut(*slot, frame); !copied.ok()) {
      tx_.FreeDesc(*desc_id);
      reject = copied;
      break;
    }
    VirtqDesc desc;
    desc.addr = *slot;
    desc.len = static_cast<uint32_t>(frame.size());
    tx_.WriteDesc(*desc_id, desc);
    tx_.PostAvail(*desc_id);
    tx_outstanding_[*desc_id] = *slot;
    ++stats_.frames_sent;
    ++sent;
  }
  if (sent > 0) {
    // One doorbell covers every frame posted above.
    if (!hardening_.polling) {
      CIO_PROF_SCOPE(costs_->profiler(), "virtio.kick");
      costs_->ChargeNotify();
      device_->Kick();
    }
    watchdog_.Arm(costs_->clock()->now_ns());
  }
  if (sent == 0 && !reject.ok()) {
    return reject;
  }
  return sent;
}

ciobase::Result<size_t> VirtioNetDriver::ReceiveFrames(
    cionet::FrameBatch& batch, size_t max_frames) {
  batch.Clear();
  if (!negotiated_) {
    return ciobase::FailedPrecondition("driver not negotiated");
  }
  CIO_PROF_SCOPE(costs_->profiler(), "virtio.rx");
  // One read of the shared used index covers the whole batch; each entry and
  // each payload still goes through the per-frame validation path verbatim.
  used_scratch_.clear();
  size_t popped =
      rx_.PopUsedMany(hardening_.single_fetch, max_frames, used_scratch_);
  for (size_t k = 0; k < popped; ++k) {
    ciobase::Result<ciobase::Buffer> frame =
        hardening_.validate_completion_id ? ReceiveHardened(used_scratch_[k])
                                          : ReceiveUnhardened(used_scratch_[k]);
    if (!frame.ok()) {
      // A rejected completion is counted and skipped. The entries after it
      // were already popped from the used ring, so they must be handled in
      // this batch — a per-frame loop would reach them on its next round.
      continue;
    }
    batch.Push(std::move(*frame));
  }

  if (recovery_.enabled) {
    uint64_t now_ns = costs_->clock()->now_ns();
    // Reaping here doubles as the progress probe: a healthy device drains
    // our TX ring even when no RX traffic is due.
    size_t reaped = ReapTxCompletions();
    if (batch.size() > 0 || reaped > 0) {
      watchdog_.NoteProgress(now_ns);
    } else {
      if (!tx_outstanding_.empty()) {
        watchdog_.Arm(now_ns);
      } else {
        watchdog_.Disarm();
      }
      if (watchdog_.Expired(now_ns)) {
        ++stats_.watchdog_fires;
        if (watchdog_.Exhausted()) {
          CIO_COV("virtio.net.watchdog", ciobase::StatusCode::kTimedOut);
          return ciobase::TimedOut("virtio link: reset budget exhausted");
        }
        CIO_COV("virtio.net.watchdog", ciobase::StatusCode::kLinkReset);
        CIO_RETURN_IF_ERROR(ResetAndReattach());
        watchdog_.NoteReset(now_ns);
        return ciobase::LinkReset("virtio ring reset");
      }
    }
  }
  return batch.size();
}

ciobase::Status VirtioNetDriver::ResetAndReattach() {
  // Announce the reset before touching the rings, so an honest device that
  // polls mid-sequence already knows to forget its shadows.
  ++reset_epoch_;
  region_->GuestWriteLe64(layout_.config.ResetEpochOffset(), reset_epoch_);
  tx_.Reset();
  rx_.Reset();
  pool_.Reset();
  // Every outstanding buffer belonged to the old epoch: forfeit them all.
  // TCP retransmission replays whatever payloads were in flight.
  tx_outstanding_.clear();
  rx_outstanding_.clear();
  negotiated_ = false;
  ++stats_.ring_resets;
  // Full re-negotiation: the status dance, feature snapshot, and RX re-post
  // run exactly as at boot — there is no shortcut path to keep stateful.
  return Negotiate();
}

size_t VirtioNetDriver::ReapTxCompletions() {
  size_t reaped = 0;
  // One read of the shared used index covers every pending completion
  // (PopUsedMany bounds the claim to the queue size internally); each entry
  // still goes through the per-completion validation below verbatim.
  tx_used_scratch_.clear();
  size_t popped = tx_.PopUsedMany(hardening_.single_fetch,
                                  layout_.tx.queue_size, tx_used_scratch_);
  for (size_t k = 0; k < popped; ++k) {
    const UsedElem* elem = &tx_used_scratch_[k];
    uint16_t id = static_cast<uint16_t>(elem->id);
    auto it = tx_outstanding_.find(id);
    if (it == tx_outstanding_.end()) {
      if (hardening_.validate_completion_id) {
        ++stats_.completions_rejected;
        CIO_COV("virtio.net.tx.forged_id",
                ciobase::StatusCode::kHostViolation);
        continue;  // replayed or forged completion: refuse
      }
      // Unhardened: free whatever the id aliases to. Freeing a random
      // descriptor is exactly the temporal corruption the checks prevent;
      // the damage shows up later as pool/descriptor aliasing.
      tx_.FreeDesc(static_cast<uint16_t>(
          elem->id % layout_.tx.queue_size));
      continue;
    }
    (void)pool_.FreeSlot(it->second);
    tx_.FreeDesc(id);
    tx_outstanding_.erase(it);
    ++reaped;
  }
  return reaped;
}

ciobase::Result<ciobase::Buffer> VirtioNetDriver::ReceiveHardened(
    const UsedElem& elem) {
  // 1. Validate the completion id against our own bookkeeping (private
  //    memory, host cannot touch it).
  uint16_t id = static_cast<uint16_t>(elem.id);
  auto it = rx_outstanding_.find(id);
  if (elem.id >= layout_.rx.queue_size || it == rx_outstanding_.end()) {
    ++stats_.completions_rejected;
    CIO_COV("virtio.net.rx.forged_id", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("forged rx completion id");
  }
  uint64_t slot = it->second;
  rx_outstanding_.erase(it);
  rx_.FreeDesc(id);

  // 2. Clamp the host-claimed length to what we actually posted. We use our
  //    private record (slot size), never a re-read of the descriptor.
  uint32_t len = elem.len;
  uint32_t cap = static_cast<uint32_t>(
      std::min<size_t>(pool_.slot_size(),
                       config_.mtu + cionet::kEthernetHeaderSize));
  if (len > cap) {
    CIO_COV("virtio.net.rx.len_clamped", ciobase::StatusCode::kOutOfRange);
    if (!hardening_.clamp_used_len) {
      // Even "full" hardening configs keep this knob on; callers can turn
      // it off to measure the isolated effect of the other checks.
      len = elem.len;
    } else {
      len = cap;
    }
  }

  // 3. Bounce the payload into private memory before anything parses it.
  ciobase::Result<ciobase::Buffer> frame =
      hardening_.bounce_rx
          ? pool_.CopyIn(slot, len)
          : [&]() -> ciobase::Result<ciobase::Buffer> {
              // No bounce: hand out bytes read straight from shared memory.
              ciobase::Buffer out(std::min<size_t>(len, pool_.slot_size()));
              region_->GuestRead(slot, out);
              return out;
            }();

  (void)pool_.FreeSlot(slot);
  PostRxBuffer();  // recycle a buffer for the device
  if (frame.ok()) {
    ++stats_.frames_received;
    CIO_COV("virtio.net.rx.frame", ciobase::StatusCode::kOk);
  }
  return frame;
}

ciobase::Result<ciobase::Buffer> VirtioNetDriver::ReceiveUnhardened(
    const UsedElem& elem) {
  // The historical pattern: trust the completion id, re-read the descriptor
  // from shared memory (double fetch), and trust the host-reported length.
  VirtqDesc desc = rx_.ReadDescUnsafe(static_cast<uint16_t>(elem.id));
  size_t len = std::min<size_t>(elem.len, kUnhardenedLenCap);
  ciobase::Buffer frame(len);
  // Whatever desc.addr now says — possibly flipped since the device filled
  // the buffer — is where we read from. Out-of-pool addresses become
  // recorded OOB accesses with scrambled data.
  region_->GuestRead(desc.addr, frame);

  // Free bookkeeping by trusted-id; stale entries corrupt the free lists.
  auto it = rx_outstanding_.find(static_cast<uint16_t>(elem.id));
  if (it != rx_outstanding_.end()) {
    (void)pool_.FreeSlot(it->second);
    rx_.FreeDesc(it->first);
    rx_outstanding_.erase(it);
  }
  PostRxBuffer();
  ++stats_.frames_received;
  return frame;
}

std::vector<ciohost::SurfaceField> VirtioNetDriver::AttackSurface() const {
  using ciohost::FieldKind;
  using ciohost::SurfaceField;
  std::vector<SurfaceField> surface;
  // RX descriptor 0: the fields an in-place parser re-reads.
  surface.push_back({FieldKind::kOffset, layout_.rx.DescOffset(0), 8});
  surface.push_back({FieldKind::kLength, layout_.rx.DescOffset(0) + 8, 4});
  // Used-ring entry 0 length field.
  surface.push_back({FieldKind::kLength, layout_.rx.UsedRing(0) + 4, 4});
  // Used idx (index-storm target).
  surface.push_back({FieldKind::kIndex, layout_.rx.UsedIdx(), 2});
  // Payload area: the whole pool.
  surface.push_back({FieldKind::kPayload, layout_.pool_offset,
                     static_cast<uint32_t>(std::min<uint64_t>(
                         layout_.pool_slot_size * layout_.pool_slot_count,
                         0xffffffffu))});
  return surface;
}

}  // namespace ciovirtio
