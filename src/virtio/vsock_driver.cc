#include "src/virtio/vsock_driver.h"

#include <algorithm>

#include "src/base/coverage.h"
#include "src/virtio/negotiation.h"

namespace ciovirtio {

namespace {
// Fixed guest-side ephemeral port: one stream at a time is all the workload
// (and the fuzzer) needs; the header fields still carry the full protocol.
constexpr uint32_t kLocalPort = 51000;
constexpr uint64_t kConnectPollStepNs = 10'000;
}  // namespace

VirtioVsockDriver::VirtioVsockDriver(ciotee::SharedRegion* region,
                                     VsockLayout layout, KickTarget* device,
                                     ciobase::CostModel* costs,
                                     uint64_t expected_cid,
                                     ciohost::ObservabilityLog* observability)
    : region_(region),
      layout_(layout),
      tx_(region, layout.tx, costs),
      rx_(region, layout.rx, costs),
      pool_(region, layout.pool_offset, layout.pool_slot_size,
            layout.pool_slot_count, costs),
      device_(device),
      costs_(costs),
      expected_cid_(expected_cid),
      observability_(observability) {}

ciobase::Status VirtioVsockDriver::Negotiate() {
  // Vsock wants no MAC/MTU features, so the shared dance never touches the
  // bytes the CID occupies; it still gets the full mid-flight hardening.
  auto config = DriverNegotiate(region_, layout_.config, kFeatureVersion1,
                                /*restrict_features=*/false, observability_);
  if (!config.ok()) {
    return config.status();
  }
  // One validated fetch of the host-published CID. The value is pinned at
  // attestation time (expected_cid_), so a flipped word is a violation, not
  // a re-configuration.
  uint64_t cid = region_->GuestReadLe64(layout_.GuestCidOffset());
  if (cid != expected_cid_ || cid < kVsockGuestCidBase) {
    CIO_COV("vsock.negotiate.bad_cid", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("vsock guest CID forged");
  }
  guest_cid_ = cid;
  negotiated_ = true;
  size_t rx_buffers = std::min<size_t>(layout_.pool_slot_count / 2,
                                       layout_.rx.queue_size / 2);
  for (size_t i = 0; i < rx_buffers; ++i) {
    PostRxBuffer();
  }
  costs_->ChargeNotify();
  device_->Kick();
  CIO_COV("vsock.negotiate.ok", ciobase::StatusCode::kOk);
  return ciobase::OkStatus();
}

void VirtioVsockDriver::PostRxBuffer() {
  auto desc_id = rx_.AllocDesc();
  if (!desc_id.has_value()) {
    return;
  }
  auto slot = pool_.AllocSlot();
  if (!slot.ok()) {
    rx_.FreeDesc(*desc_id);
    return;
  }
  VirtqDesc desc;
  desc.addr = *slot;
  desc.len = static_cast<uint32_t>(pool_.slot_size());
  desc.flags = kDescFlagWrite;
  rx_.WriteDesc(*desc_id, desc);
  rx_.PostAvail(*desc_id);
  rx_outstanding_[*desc_id] = *slot;
}

ciobase::Status VirtioVsockDriver::SendPacket(const VsockPacketHeader& header,
                                              ciobase::ByteSpan payload) {
  if (!negotiated_) {
    return ciobase::FailedPrecondition("vsock driver not negotiated");
  }
  ReapTx();
  size_t total = kVsockHeaderSize + payload.size();
  if (total > pool_.slot_size()) {
    return ciobase::InvalidArgument("vsock packet exceeds pool slot");
  }
  auto desc_id = tx_.AllocDesc();
  if (!desc_id.has_value()) {
    return ciobase::ResourceExhausted("vsock tx ring full");
  }
  auto slot = pool_.AllocSlot();
  if (!slot.ok()) {
    tx_.FreeDesc(*desc_id);
    return slot.status();
  }
  ciobase::Buffer packet(total);
  EncodeVsockHeader(header, packet.data());
  std::copy(payload.begin(), payload.end(),
            packet.begin() + kVsockHeaderSize);
  if (ciobase::Status copied = pool_.CopyOut(*slot, packet); !copied.ok()) {
    tx_.FreeDesc(*desc_id);
    (void)pool_.FreeSlot(*slot);
    return copied;
  }
  VirtqDesc desc;
  desc.addr = *slot;
  desc.len = static_cast<uint32_t>(total);
  tx_.WriteDesc(*desc_id, desc);
  tx_.PostAvail(*desc_id);
  tx_outstanding_[*desc_id] = *slot;
  ++stats_.packets_sent;
  costs_->ChargeNotify();
  device_->Kick();
  return ciobase::OkStatus();
}

void VirtioVsockDriver::ReapTx() {
  used_scratch_.clear();
  size_t popped = tx_.PopUsedMany(/*single_fetch=*/true,
                                  layout_.tx.queue_size, used_scratch_);
  for (size_t k = 0; k < popped; ++k) {
    uint16_t id = static_cast<uint16_t>(used_scratch_[k].id);
    auto it = tx_outstanding_.find(id);
    if (it == tx_outstanding_.end()) {
      ++stats_.completions_rejected;
      CIO_COV("vsock.tx.forged_id", ciobase::StatusCode::kHostViolation);
      continue;
    }
    (void)pool_.FreeSlot(it->second);
    tx_.FreeDesc(id);
    tx_outstanding_.erase(it);
  }
}

ciobase::Status VirtioVsockDriver::Connect(uint32_t port,
                                           uint64_t deadline_ns) {
  if (!negotiated_) {
    return ciobase::FailedPrecondition("vsock driver not negotiated");
  }
  connected_ = false;
  local_port_ = kLocalPort;
  remote_port_ = port;
  VsockPacketHeader header;
  header.src_cid = guest_cid_;
  header.dst_cid = kVsockHostCid;
  header.src_port = local_port_;
  header.dst_port = remote_port_;
  header.op = kVsockOpRequest;
  header.buf_alloc = static_cast<uint32_t>(
      pool_.slot_size() * (pool_.slot_count() / 2));
  header.fwd_cnt = fwd_cnt_;
  CIO_RETURN_IF_ERROR(SendPacket(header, {}));
  uint64_t deadline = costs_->clock()->now_ns() + deadline_ns;
  for (;;) {
    ciobase::Status polled = Poll();
    if (connected_) {
      CIO_COV("vsock.connect.ok", ciobase::StatusCode::kOk);
      return ciobase::OkStatus();
    }
    if (!polled.ok()) {
      return polled;
    }
    if (costs_->clock()->now_ns() >= deadline) {
      CIO_COV("vsock.connect.timeout", ciobase::StatusCode::kTimedOut);
      return ciobase::TimedOut("vsock connect: no response");
    }
    costs_->clock()->Advance(kConnectPollStepNs);
    costs_->ChargeNotify();
    device_->Kick();
  }
}

ciobase::Status VirtioVsockDriver::Send(ciobase::ByteSpan payload) {
  if (!connected_) {
    return ciobase::FailedPrecondition("vsock stream not connected");
  }
  // Credit check against the peer's last advertisement. The numbers are
  // host-authored; honoring them only throttles us (a lying host starves
  // its own echo service), and the subtraction is wrap-safe by clamping.
  uint32_t in_flight = tx_cnt_ - peer_fwd_cnt_;
  if (in_flight > peer_buf_alloc_ ||
      payload.size() > peer_buf_alloc_ - in_flight) {
    ++stats_.credit_stalls;
    CIO_COV("vsock.tx.credit_stall",
            ciobase::StatusCode::kResourceExhausted);
    VsockPacketHeader ask;
    ask.src_cid = guest_cid_;
    ask.dst_cid = kVsockHostCid;
    ask.src_port = local_port_;
    ask.dst_port = remote_port_;
    ask.op = kVsockOpCreditRequest;
    ask.fwd_cnt = fwd_cnt_;
    (void)SendPacket(ask, {});
    return ciobase::ResourceExhausted("vsock credit window closed");
  }
  VsockPacketHeader header;
  header.src_cid = guest_cid_;
  header.dst_cid = kVsockHostCid;
  header.src_port = local_port_;
  header.dst_port = remote_port_;
  header.op = kVsockOpRw;
  header.len = static_cast<uint32_t>(payload.size());
  header.fwd_cnt = fwd_cnt_;
  CIO_RETURN_IF_ERROR(SendPacket(header, payload));
  tx_cnt_ += static_cast<uint32_t>(payload.size());
  return ciobase::OkStatus();
}

ciobase::Status VirtioVsockDriver::Poll() {
  if (!negotiated_) {
    return ciobase::FailedPrecondition("vsock driver not negotiated");
  }
  ReapTx();
  used_scratch_.clear();
  size_t popped = rx_.PopUsedMany(/*single_fetch=*/true,
                                  layout_.rx.queue_size, used_scratch_);
  ciobase::Status first_error = ciobase::OkStatus();
  for (size_t k = 0; k < popped; ++k) {
    ciobase::Status consumed = ConsumeRx(used_scratch_[k]);
    if (!consumed.ok() && first_error.ok()) {
      first_error = consumed;
    }
  }
  return first_error;
}

ciobase::Status VirtioVsockDriver::ConsumeRx(const UsedElem& elem) {
  uint16_t id = static_cast<uint16_t>(elem.id);
  auto it = rx_outstanding_.find(id);
  if (elem.id >= layout_.rx.queue_size || it == rx_outstanding_.end()) {
    ++stats_.completions_rejected;
    CIO_COV("vsock.rx.forged_id", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("vsock forged rx completion id");
  }
  uint64_t slot = it->second;
  rx_outstanding_.erase(it);
  rx_.FreeDesc(id);
  // Clamp the host-claimed length to the slot we actually posted, then
  // bounce the whole packet into private memory with one fetch; every parse
  // below reads the snapshot, never shared memory.
  uint32_t len =
      std::min<uint32_t>(elem.len, static_cast<uint32_t>(pool_.slot_size()));
  ciobase::Result<ciobase::Buffer> packet = pool_.CopyIn(slot, len);
  (void)pool_.FreeSlot(slot);
  PostRxBuffer();
  if (!packet.ok()) {
    return packet.status();
  }
  if (packet->size() < kVsockHeaderSize) {
    ++stats_.header_violations;
    CIO_COV("vsock.rx.short_packet", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("vsock packet shorter than header");
  }
  VsockPacketHeader header = DecodeVsockHeader(packet->data());
  if (header.len > packet->size() - kVsockHeaderSize) {
    ++stats_.header_violations;
    CIO_COV("vsock.rx.len_overflow", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("vsock header length exceeds packet");
  }
  if (header.dst_cid != guest_cid_ || header.src_cid != kVsockHostCid) {
    ++stats_.header_violations;
    CIO_COV("vsock.rx.bad_route", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("vsock packet for wrong CID pair");
  }
  if (header.dst_port != local_port_ || header.src_port != remote_port_) {
    ++stats_.header_violations;
    CIO_COV("vsock.rx.bad_route", ciobase::StatusCode::kHostViolation);
    return ciobase::HostViolation("vsock packet for wrong port pair");
  }
  // Credit advertisement rides every packet; snapshot it.
  peer_buf_alloc_ = header.buf_alloc;
  peer_fwd_cnt_ = header.fwd_cnt;
  switch (header.op) {
    case kVsockOpResponse:
      if (connected_) {
        ++stats_.header_violations;
        CIO_COV("vsock.rx.dup_response",
                ciobase::StatusCode::kHostViolation);
        return ciobase::HostViolation("vsock duplicate connect response");
      }
      connected_ = true;
      return ciobase::OkStatus();
    case kVsockOpRw: {
      fwd_cnt_ += header.len;
      rx_queue_.emplace_back(packet->begin() + kVsockHeaderSize,
                             packet->begin() + kVsockHeaderSize + header.len);
      ++stats_.packets_received;
      CIO_COV("vsock.rx.packet", ciobase::StatusCode::kOk);
      return ciobase::OkStatus();
    }
    case kVsockOpCreditUpdate:
      CIO_COV("vsock.rx.credit_update", ciobase::StatusCode::kOk);
      return ciobase::OkStatus();
    case kVsockOpCreditRequest: {
      VsockPacketHeader reply;
      reply.src_cid = guest_cid_;
      reply.dst_cid = kVsockHostCid;
      reply.src_port = local_port_;
      reply.dst_port = remote_port_;
      reply.op = kVsockOpCreditUpdate;
      reply.buf_alloc = static_cast<uint32_t>(
          pool_.slot_size() * (pool_.slot_count() / 2));
      reply.fwd_cnt = fwd_cnt_;
      return SendPacket(reply, {});
    }
    case kVsockOpRst:
    case kVsockOpShutdown:
      connected_ = false;
      ++stats_.resets_seen;
      CIO_COV("vsock.rx.reset", ciobase::StatusCode::kLinkReset);
      return ciobase::LinkReset("vsock stream reset by peer");
    default:
      ++stats_.header_violations;
      CIO_COV("vsock.rx.unknown_op", ciobase::StatusCode::kHostViolation);
      return ciobase::HostViolation("vsock unknown opcode");
  }
}

ciobase::Result<ciobase::Buffer> VirtioVsockDriver::Receive() {
  if (rx_queue_.empty()) {
    return ciobase::Unavailable("no vsock payload pending");
  }
  ciobase::Buffer out = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return out;
}

}  // namespace ciovirtio
