// VirtioVsockDevice: a virtio-vsock-style host device model.
//
// Vsock is the second member of the device zoo (ISSUE 7): a stream transport
// between guest and host that does NOT ride the network fabric — packets
// cross only the shared-memory virtqueues, addressed by (CID, port) instead
// of MAC/IP. That makes it a pure host-interface surface: every field of
// every packet header is written by the untrusted host, and the guest driver
// must treat CIDs, ports, lengths, opcodes and credit counters as attacker
// data. The host side here implements an echo service (the workload the
// fuzzer drives) plus the same adversarial fault repertoire as the net
// device: swallowed doorbells, stalls, drops/duplicates, payload corruption,
// and garbage counters.
//
// Wire format (one packet per descriptor chain, all LE), 40-byte header:
//   [ 0] src_cid  u64      [ 8] dst_cid  u64
//   [16] src_port u32      [20] dst_port u32
//   [24] len      u32      [28] op       u16   [30] flags u16
//   [32] buf_alloc u32     [36] fwd_cnt  u32
// followed by `len` payload bytes (kOpRw only).

#ifndef SRC_VIRTIO_VSOCK_DEVICE_H_
#define SRC_VIRTIO_VSOCK_DEVICE_H_

#include "src/base/clock.h"
#include "src/hostsim/adversary.h"
#include "src/hostsim/observability.h"
#include "src/virtio/negotiation.h"
#include "src/virtio/net_device.h"
#include "src/virtio/virtqueue.h"

namespace ciovirtio {

// Well-known CIDs (virtio-vsock convention).
inline constexpr uint64_t kVsockHostCid = 2;
inline constexpr uint64_t kVsockGuestCidBase = 3;  // + node_id

// Stream operations.
inline constexpr uint16_t kVsockOpRequest = 1;        // connect
inline constexpr uint16_t kVsockOpResponse = 2;       // connect accepted
inline constexpr uint16_t kVsockOpRst = 3;
inline constexpr uint16_t kVsockOpShutdown = 4;
inline constexpr uint16_t kVsockOpRw = 5;             // payload
inline constexpr uint16_t kVsockOpCreditUpdate = 6;
inline constexpr uint16_t kVsockOpCreditRequest = 7;

inline constexpr size_t kVsockHeaderSize = 40;

struct VsockPacketHeader {
  uint64_t src_cid = 0;
  uint64_t dst_cid = 0;
  uint32_t src_port = 0;
  uint32_t dst_port = 0;
  uint32_t len = 0;
  uint16_t op = 0;
  uint16_t flags = 0;
  uint32_t buf_alloc = 0;
  uint32_t fwd_cnt = 0;
};

void EncodeVsockHeader(const VsockPacketHeader& header, uint8_t* out);
VsockPacketHeader DecodeVsockHeader(const uint8_t* in);

// Memory geometry of a vsock device in its own shared region: the standard
// 64-byte config block (guest CID replaces MAC/MTU at offset 24), a TX and
// an RX virtqueue, and a buffer pool.
struct VsockLayout {
  ConfigLayout config;
  VirtqLayout tx;  // guest -> host
  VirtqLayout rx;  // host -> guest
  uint64_t pool_offset = 0;
  size_t pool_slot_size = 2048;
  size_t pool_slot_count = 128;

  uint64_t GuestCidOffset() const { return config.base + 24; }
  static VsockLayout Make(uint16_t queue_size, size_t pool_slot_size,
                          size_t pool_slot_count);
  uint64_t TotalSize() const {
    return pool_offset + pool_slot_size * pool_slot_count;
  }
};

// Host half: an echo service behind the virtqueues. Connection requests to
// any port are accepted; kOpRw payloads are echoed back with src/dst
// swapped; credit counters are maintained per the stream protocol.
class VirtioVsockDevice final : public KickTarget {
 public:
  VirtioVsockDevice(ciotee::SharedRegion* region, VsockLayout layout,
                    uint64_t guest_cid, ciohost::Adversary* adversary,
                    ciohost::ObservabilityLog* observability,
                    ciobase::SimClock* clock);

  void Poll();
  void Kick() override;

  struct Stats {
    uint64_t packets_rx = 0;  // guest -> host
    uint64_t packets_tx = 0;  // host -> guest
    uint64_t connects = 0;
    uint64_t bytes_echoed = 0;
    uint64_t kicks = 0;
    uint64_t kicks_swallowed = 0;
    uint64_t packets_dropped_fault = 0;
    uint64_t packets_duplicated_fault = 0;
    uint64_t tx_dropped_no_buffer = 0;
    uint64_t malformed_from_guest = 0;
    uint64_t epoch_adoptions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bool Faulted(ciohost::FaultStrategy strategy) const;
  void AdoptGuestEpoch();
  void DrainTx();
  void SendToGuest(const VsockPacketHeader& header, ciobase::ByteSpan payload);

  ciotee::SharedRegion* region_;
  VsockLayout layout_;
  VirtqueueDevice tx_;
  VirtqueueDevice rx_;
  uint64_t guest_cid_;
  ciohost::Adversary* adversary_;
  ciohost::ObservabilityLog* observability_;
  ciobase::SimClock* clock_;
  uint64_t epoch_ = 0;
  // Host-side stream accounting (single echo connection at a time is enough
  // for the workload; the header fields still carry the full protocol).
  uint32_t host_fwd_cnt_ = 0;   // bytes the host has consumed from the guest
  uint32_t host_tx_cnt_ = 0;    // bytes the host has sent to the guest
  Stats stats_;
};

}  // namespace ciovirtio

#endif  // SRC_VIRTIO_VSOCK_DEVICE_H_
