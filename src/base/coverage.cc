#include "src/base/coverage.h"

#include <algorithm>

namespace ciobase {

CoverageMap& CoverageMap::Instance() {
  static CoverageMap instance;
  return instance;
}

uint16_t CoverageMap::RegisterSite(const char* name) {
  auto it = site_ids_.find(name);
  if (it != site_ids_.end()) {
    return it->second;
  }
  uint16_t id = static_cast<uint16_t>(site_names_.size());
  site_ids_.emplace(name, id);
  site_names_.emplace_back(name);
  hits_.resize(site_names_.size() * kCodeSlots, 0);
  return id;
}

void CoverageMap::Hit(uint16_t site, uint16_t code) {
  if (site >= site_names_.size()) {
    return;
  }
  if (code >= kCodeSlots) {
    code = kCodeSlots - 1;
  }
  ++hits_[static_cast<size_t>(site) * kCodeSlots + code];
  ++total_hits_;
}

size_t CoverageMap::DistinctEdges() const {
  size_t edges = 0;
  for (uint64_t count : hits_) {
    if (count > 0) {
      ++edges;
    }
  }
  return edges;
}

void CoverageMap::ResetHits() {
  std::fill(hits_.begin(), hits_.end(), 0);
  total_hits_ = 0;
}

std::vector<CoverageMap::Edge> CoverageMap::Edges() const {
  // site_ids_ iterates in name order, giving a stable, name-sorted listing.
  std::vector<Edge> edges;
  for (const auto& [name, id] : site_ids_) {
    for (uint16_t code = 0; code < kCodeSlots; ++code) {
      uint64_t count = hits_[static_cast<size_t>(id) * kCodeSlots + code];
      if (count > 0) {
        edges.push_back({name, code, count});
      }
    }
  }
  return edges;
}

uint64_t CoverageMap::EdgeHash() const {
  uint64_t hash = 14695981039346656037ULL;
  auto mix = [&hash](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;
    }
  };
  for (const Edge& edge : Edges()) {
    for (char c : edge.site) {
      hash ^= static_cast<uint8_t>(c);
      hash *= 1099511628211ULL;
    }
    mix(edge.code);
    mix(edge.hits);
  }
  return hash;
}

std::string CoverageMap::Summary() const {
  return "edges=" + std::to_string(DistinctEdges()) +
         " sites=" + std::to_string(SiteCount()) +
         " hits=" + std::to_string(TotalHits());
}

}  // namespace ciobase
