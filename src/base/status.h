// Status and Result<T>: exception-free error handling for the cio libraries.
//
// Every fallible operation returns a Status or a Result<T>. Codes are chosen
// to match the failure classes that matter for confidential I/O interfaces:
// a hostile host produces kHostViolation / kTampered, a misbehaving guest
// produces kInvalidArgument / kOutOfRange, and resource exhaustion is
// kResourceExhausted. Per the paper's "stateless interface" principle,
// callers of the hardened interfaces are expected to treat most errors as
// fatal rather than recoverable.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ciobase {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed a bad value
  kOutOfRange,         // index/offset/length outside the permitted window
  kResourceExhausted,  // ring full, pool empty, arena exhausted
  kFailedPrecondition, // object not in the required state
  kNotFound,
  kAlreadyExists,
  kUnavailable,        // transient: nothing to poll, retry later
  kTimedOut,           // watchdog expired: the host stopped making progress
  kLinkReset,          // the link was reset and reattached; in-flight frames
                       // on the old ring are gone and must be re-sent
  kTampered,           // cryptographic or structural integrity check failed
  kUnauthenticated,    // admission refused: missing/forged/stale attestation
  kHostViolation,      // the untrusted host broke the interface contract
  kPermissionDenied,   // trust-domain policy forbids the access
  kUnimplemented,
  kInternal,
};

// Human-readable name for a code, e.g. "HOST_VIOLATION".
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "HOST_VIOLATION: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
Status InvalidArgument(std::string message);
Status OutOfRange(std::string message);
Status ResourceExhausted(std::string message);
Status FailedPrecondition(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status Unavailable(std::string message);
Status TimedOut(std::string message);
Status LinkReset(std::string message);
Status Tampered(std::string message);
Status Unauthenticated(std::string message);
Status HostViolation(std::string message);
Status PermissionDenied(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(value_);
  }
  T take() {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(value_);
  }

  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK status from an expression that yields Status.
#define CIO_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::ciobase::Status cio_status_ = (expr);    \
    if (!cio_status_.ok()) {                   \
      return cio_status_;                      \
    }                                          \
  } while (0)

// Assigns the value of a Result expression or propagates its status.
#define CIO_ASSIGN_OR_RETURN(lhs, expr)        \
  auto cio_result_##__LINE__ = (expr);         \
  if (!cio_result_##__LINE__.ok()) {           \
    return cio_result_##__LINE__.status();     \
  }                                            \
  lhs = cio_result_##__LINE__.take()

}  // namespace ciobase

#endif  // SRC_BASE_STATUS_H_
