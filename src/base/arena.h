// FrameArena: a small pool of reusable byte buffers for the datapath.
//
// The hot path (L2 receive scratch, the network stack's staged TX frames, the
// TLS record layer) churns through short-lived Buffers of a few sizes. A
// per-frame heap allocation is pure constant-factor overhead, so instead the
// datapath acquires buffers from an arena and releases them back when done:
// after warm-up, steady-state traffic performs no heap allocations. This is
// wall-clock-only machinery — it never touches the modeled cost clock, and it
// deliberately does NOT change the safety discipline: a buffer acquired from
// the arena is still guest-private memory, and every host byte still goes
// through the single-fetch copy before validation or use.

#ifndef SRC_BASE_ARENA_H_
#define SRC_BASE_ARENA_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"

namespace ciobase {

class FrameArena {
 public:
  FrameArena() = default;
  explicit FrameArena(size_t max_pooled) : max_pooled_(max_pooled) {}

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  // Returns a buffer of exactly `size` bytes, reusing pooled capacity when
  // available. Contents are unspecified (callers overwrite before reading —
  // the mandatory copy-in fills every byte they consume).
  Buffer Acquire(size_t size);

  // Returns a buffer's capacity to the pool. Beyond `max_pooled` buffers the
  // capacity is simply dropped (frees memory under bursts).
  void Release(Buffer buffer);

  struct Stats {
    uint64_t acquires = 0;  // total Acquire() calls
    uint64_t reuses = 0;    // Acquire() calls served from the pool
    uint64_t pooled = 0;    // buffers currently in the pool
  };
  Stats stats() const {
    return {acquires_, reuses_, static_cast<uint64_t>(pool_.size())};
  }

 private:
  std::vector<Buffer> pool_;
  size_t max_pooled_ = 64;
  uint64_t acquires_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace ciobase

#endif  // SRC_BASE_ARENA_H_
