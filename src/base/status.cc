#include "src/base/status.h"

namespace ciobase {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kLinkReset:
      return "LINK_RESET";
    case StatusCode::kTampered:
      return "TAMPERED";
    case StatusCode::kUnauthenticated:
      return "UNAUTHENTICATED";
    case StatusCode::kHostViolation:
      return "HOST_VIOLATION";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status TimedOut(std::string message) {
  return Status(StatusCode::kTimedOut, std::move(message));
}
Status LinkReset(std::string message) {
  return Status(StatusCode::kLinkReset, std::move(message));
}
Status Tampered(std::string message) {
  return Status(StatusCode::kTampered, std::move(message));
}
Status Unauthenticated(std::string message) {
  return Status(StatusCode::kUnauthenticated, std::move(message));
}
Status HostViolation(std::string message) {
  return Status(StatusCode::kHostViolation, std::move(message));
}
Status PermissionDenied(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace ciobase
