#include "src/base/rng.h"

#include "src/base/bits.h"

namespace ciobase {

namespace {

// splitmix64: expands the single seed into the four xoshiro words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& w : s_) {
    w = SplitMix64(x);
  }
  // Avoid the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = RotL64(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL64(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBounded(hi - lo + 1);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextDouble() {
  // 53 random bits into the mantissa.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

void Rng::Fill(MutableByteSpan out) {
  size_t i = 0;
  while (i + 8 <= out.size()) {
    StoreLe64(out.data() + i, NextU64());
    i += 8;
  }
  if (i < out.size()) {
    uint64_t last = NextU64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>(last);
      last >>= 8;
    }
  }
}

Buffer Rng::Bytes(size_t n) {
  Buffer out(n);
  Fill(out);
  return out;
}

}  // namespace ciobase
