// CoverageMap: lightweight probe instrumentation for the guest drivers.
//
// The coverage-guided fuzzer (src/fuzz) needs a feedback signal that says
// "this hostile input made the guest take a validation path it never took
// before". Branch coverage of the whole binary would be overkill (and
// non-deterministic across build configs), so we instrument exactly the
// decision points that matter for interface hardening: every place a guest
// driver classifies host behavior — a completion accepted, a length clamped,
// an id rejected, a watchdog fired — drops a CIO_COV(site, code) probe.
//
// An *edge* is a (probe-site, status-code) pair: the same site returning
// kOk and kTampered are two different edges, so an input that makes a
// previously-happy check fail (or a previously-failing check pass) counts
// as new coverage. Sites are identified by stable string names, so coverage
// reports and corpus metadata survive across processes and builds.
//
// The map is a process-global singleton: the simulation is single-threaded
// by construction, probes are two array indexations, and the fuzzer resets
// hit counts between runs while site registration persists for the process
// lifetime (ids are handed out once per call site via a static local).

#ifndef SRC_BASE_COVERAGE_H_
#define SRC_BASE_COVERAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace ciobase {

class CoverageMap {
 public:
  // One slot per StatusCode (15 today) with room to grow; codes at or above
  // the cap are clamped into the last slot rather than dropped.
  static constexpr uint16_t kCodeSlots = 16;

  static CoverageMap& Instance();

  // Registers (or looks up) a probe site by name. Stable: the same name
  // always maps to the same id within a process.
  uint16_t RegisterSite(const char* name);

  void Hit(uint16_t site, uint16_t code);

  // Distinct (site, code) edges observed since the last ResetHits().
  size_t DistinctEdges() const;
  uint64_t TotalHits() const { return total_hits_; }
  size_t SiteCount() const { return site_names_.size(); }

  // Zeroes every hit count; registered sites (and their ids) persist.
  void ResetHits();

  struct Edge {
    std::string site;
    uint16_t code = 0;
    uint64_t hits = 0;
  };
  // Every hit edge, sorted by site name then code (stable across runs).
  std::vector<Edge> Edges() const;

  // FNV-1a hash over the sorted (site, code, hits) triples: two runs with
  // identical coverage produce identical hashes. The fuzz determinism gate
  // compares these.
  uint64_t EdgeHash() const;

  // Human-readable "edges=N sites=M hits=K".
  std::string Summary() const;

 private:
  CoverageMap() = default;

  std::map<std::string, uint16_t> site_ids_;
  std::vector<std::string> site_names_;
  std::vector<uint64_t> hits_;  // site * kCodeSlots + code
  uint64_t total_hits_ = 0;
};

inline uint16_t CoverageCode(StatusCode code) {
  return static_cast<uint16_t>(code);
}
inline uint16_t CoverageCode(const Status& status) {
  return static_cast<uint16_t>(status.code());
}
inline uint16_t CoverageCode(uint16_t code) { return code; }
inline uint16_t CoverageCode(int code) { return static_cast<uint16_t>(code); }

// Records edge (site, code). `site` must be a string literal (stable name);
// `code` may be a StatusCode, Status, or small integer.
#define CIO_COV(site, code)                                              \
  do {                                                                   \
    static const uint16_t cio_cov_site_id_ =                             \
        ::ciobase::CoverageMap::Instance().RegisterSite(site);           \
    ::ciobase::CoverageMap::Instance().Hit(cio_cov_site_id_,             \
                                           ::ciobase::CoverageCode(code)); \
  } while (0)

}  // namespace ciobase

#endif  // SRC_BASE_COVERAGE_H_
