#include "src/base/arena.h"

#include <utility>

namespace ciobase {

Buffer FrameArena::Acquire(size_t size) {
  ++acquires_;
  if (!pool_.empty()) {
    Buffer buffer = std::move(pool_.back());
    pool_.pop_back();
    ++reuses_;
    buffer.resize(size);
    return buffer;
  }
  return Buffer(size);
}

void FrameArena::Release(Buffer buffer) {
  if (pool_.size() >= max_pooled_) {
    return;  // drop: bounds pooled memory under bursts
  }
  buffer.clear();
  pool_.push_back(std::move(buffer));
}

}  // namespace ciobase
