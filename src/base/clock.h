// Simulated time and boundary-cost accounting.
//
// The repository runs guest, host, and device in one address space, so the
// *real* cost of trust-boundary crossings (VM exits, enclave ocalls, RMP page
// unsharing, intra-TEE compartment switches) is not observable from wall
// time. Instead, every boundary crossing and data movement charges modeled
// nanoseconds to a SimClock through a CostModel. Benchmarks report both the
// wall time of the real data-path work (memcpy, crypto, ring manipulation)
// and the modeled time, and the figure-level comparisons (Figure 5, the
// copy-vs-revocation crossover) are driven by modeled time so that the
// *shape* of the paper's argument is preserved independent of the machine
// the simulation runs on.
//
// Default constants are order-of-magnitude figures from the literature the
// paper cites: ~3 us for a hypervisor exit / enclave ocall round trip, ~6 us
// for a TEE-to-TEE (dual enclave) switch, tens of ns for an intra-TEE
// compartment switch (MPK-style [25, 51, 52]), ~0.45 us per page for
// revocation (RMP update without cross-vCPU shootdown), and a per-byte copy
// cost corresponding to streaming memcpy with cold destinations.

#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cioprof {
class ProfRegistry;  // src/prof — base never links it, only carries a pointer
}  // namespace cioprof

namespace ciobase {

class SimClock {
 public:
  SimClock() = default;

  uint64_t now_ns() const { return now_ns_; }
  void Advance(uint64_t ns) { now_ns_ += ns; }
  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

// Tunable per-crossing cost constants, in nanoseconds.
struct CostConstants {
  // Full trust-boundary exit to the host (VM exit + hypervisor service, or
  // SGX ocall round trip). Paid per operation by syscall-level I/O.
  double host_exit_ns = 3000.0;
  // Doorbell/notification to the host that does not need a reply (kicking a
  // virtqueue). Cheaper than a full exit but not free.
  double notify_ns = 1200.0;
  // Intra-TEE compartment switch (protection-key style domain change).
  double compartment_switch_ns = 60.0;
  // TEE-to-TEE switch (two enclaves): two full boundary crossings.
  double tee_switch_ns = 6000.0;
  // Polling probe of a shared ring (cache-coherent read).
  double ring_poll_ns = 20.0;
  // Byte copy across a trust boundary (streaming memcpy, cold destination).
  double copy_ns_per_byte = 0.15;
  // Byte of software AEAD (encrypt or decrypt+verify).
  double aead_ns_per_byte = 0.45;
  // Un-sharing one 4 KiB page from the host on the fly (RMP/EPT update,
  // no cross-vCPU TLB shootdown in the single-vCPU model).
  double page_unshare_ns = 250.0;
  // Re-sharing a page back to the host (buffer recycling on the revocation
  // receive path).
  double page_reshare_ns = 150.0;

  size_t page_size = 4096;
};

// The counters a CostModel keeps, as interned slots: the charge hot path is
// an array index, not a string-keyed map lookup. The string names survive
// only for dump/JSON and for test assertions (counter("notifies")).
enum class CostCounter : uint8_t {
  kHostExits = 0,
  kNotifies,
  kCompartmentSwitches,
  kTeeSwitches,
  kRingPolls,
  kCopies,
  kBytesCopied,
  kAeadOps,
  kBytesAead,
  kPagesUnshared,
  kPagesReshared,
};
inline constexpr size_t kCostCounterCount = 11;

// Stable display name for a counter slot ("host_exits", "notifies", ...).
std::string_view CostCounterName(CostCounter counter);

// Charges modeled costs to a SimClock and keeps named counters so benchmarks
// can report a breakdown (exits, copies, bytes copied, pages revoked, ...).
class CostModel {
 public:
  using Slots = std::array<uint64_t, kCostCounterCount>;
  explicit CostModel(SimClock* clock) : clock_(clock) {}
  CostModel(SimClock* clock, CostConstants constants)
      : clock_(clock), c_(constants) {}

  const CostConstants& constants() const { return c_; }

  void ChargeHostExit() { Charge(CostCounter::kHostExits, c_.host_exit_ns); }
  void ChargeNotify() { Charge(CostCounter::kNotifies, c_.notify_ns); }
  void ChargeCompartmentSwitch() {
    Charge(CostCounter::kCompartmentSwitches, c_.compartment_switch_ns);
  }
  void ChargeTeeSwitch() { Charge(CostCounter::kTeeSwitches, c_.tee_switch_ns); }
  void ChargeRingPoll() { Charge(CostCounter::kRingPolls, c_.ring_poll_ns); }
  void ChargeCopy(size_t bytes) {
    Count(CostCounter::kCopies, 1);
    Count(CostCounter::kBytesCopied, bytes);
    clock_->Advance(static_cast<uint64_t>(c_.copy_ns_per_byte *
                                          static_cast<double>(bytes)));
  }
  void ChargeAead(size_t bytes) {
    Count(CostCounter::kAeadOps, 1);
    Count(CostCounter::kBytesAead, bytes);
    clock_->Advance(static_cast<uint64_t>(c_.aead_ns_per_byte *
                                          static_cast<double>(bytes)));
  }
  void ChargePageUnshare(size_t pages) {
    Count(CostCounter::kPagesUnshared, pages);
    clock_->Advance(static_cast<uint64_t>(c_.page_unshare_ns *
                                          static_cast<double>(pages)));
  }
  void ChargePageReshare(size_t pages) {
    Count(CostCounter::kPagesReshared, pages);
    clock_->Advance(static_cast<uint64_t>(c_.page_reshare_ns *
                                          static_cast<double>(pages)));
  }

  uint64_t counter(CostCounter c) const {
    return slots_[static_cast<size_t>(c)];
  }
  // Name-keyed lookup for dumps and tests; linear scan, not for hot paths.
  uint64_t counter(std::string_view name) const {
    for (size_t i = 0; i < kCostCounterCount; ++i) {
      if (CostCounterName(static_cast<CostCounter>(i)) == name) {
        return slots_[i];
      }
    }
    return 0;
  }
  const Slots& slots() const { return slots_; }
  void ResetCounters() { slots_.fill(0); }

  SimClock* clock() const { return clock_; }

  // Optional in-sim profiler observing this node (see src/prof/profiler.h).
  // Instrumented components reach it through their existing costs_ pointer.
  void set_profiler(cioprof::ProfRegistry* profiler) { profiler_ = profiler; }
  cioprof::ProfRegistry* profiler() const { return profiler_; }

 private:
  void Charge(CostCounter c, double ns) {
    Count(c, 1);
    clock_->Advance(static_cast<uint64_t>(ns));
  }
  void Count(CostCounter c, uint64_t n) { slots_[static_cast<size_t>(c)] += n; }

  SimClock* clock_;
  CostConstants c_;
  Slots slots_{};
  cioprof::ProfRegistry* profiler_ = nullptr;
};

}  // namespace ciobase

#endif  // SRC_BASE_CLOCK_H_
