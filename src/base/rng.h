// Deterministic pseudo-random number generator (xoshiro256**).
//
// Everything in this repository that needs randomness — workload generators,
// the adversary's strategy choices, TLS nonces in the simulation, fabric
// loss/reorder — draws from a seeded Rng so that tests and benchmarks are
// reproducible run to run. This is a simulation substrate, NOT a
// cryptographically secure generator; the crypto library never uses it for
// key material outside of tests.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

#include "src/base/bytes.h"

namespace ciobase {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Uniform double in [0, 1).
  double NextDouble();

  void Fill(MutableByteSpan out);
  Buffer Bytes(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace ciobase

#endif  // SRC_BASE_RNG_H_
