// Guest-side link recovery policy: watchdog timeouts with capped exponential
// backoff.
//
// The paper's threat model concedes that a malicious host "can deny service";
// what a production confidential node must guarantee is that denial is the
// *only* thing the host gets, and that transient misbehavior (a swallowed
// doorbell, a stalled counter, a killed link) is survived rather than wedging
// the guest forever. The recovery machinery is deliberately layered:
//
//   L2/virtio : LinkWatchdog notices the host stopped consuming or producing,
//               and the transport resets + reattaches the shared ring.
//   TCP       : retransmission replays segments lost across the reset.
//   TLS/engine: the secure channel is re-established and the application
//               resend window replays unacknowledged messages exactly once.
//
// Every timeout, backoff cap, and retry budget lives in RecoveryConfig so a
// deployment (or an attack-campaign cell) tunes recovery in one place.

#ifndef SRC_BASE_RECOVERY_H_
#define SRC_BASE_RECOVERY_H_

#include <cstdint>

namespace ciobase {

struct RecoveryConfig {
  // Master switch. Baseline profiles ship with recovery off — that is the
  // point of the campaign's recovery dimension: the baselines wedge.
  bool enabled = false;

  // The watchdog arms whenever the guest has work in flight that the host
  // has not consumed (or the host's published counters are incoherent), and
  // fires after this much modeled time without progress.
  uint64_t watchdog_timeout_ns = 2'000'000;  // 2 ms

  // After each reset the next watchdog window doubles, bounded by the cap,
  // so a persistently hostile host costs the guest bounded reset churn.
  uint64_t backoff_initial_ns = 2'000'000;   // 2 ms
  uint64_t backoff_cap_ns = 32'000'000;      // 32 ms

  // Consecutive ring resets tolerated before the transport gives up and
  // reports the link dead (kTimedOut). Any successful reattach (counter
  // progress after a reset) clears the count.
  uint32_t max_resets = 8;

  // How many sent-but-unacknowledged application messages the engine keeps
  // for replay after a TLS re-establishment. Messages evicted from a full
  // window are counted as lost, never silently dropped.
  size_t resend_window = 64;

  // TLS/TCP reconnect attempts before the node declares itself failed.
  uint32_t max_reconnects = 8;

  bool Valid() const {
    if (!enabled) {
      return true;
    }
    return watchdog_timeout_ns > 0 && backoff_initial_ns > 0 &&
           backoff_cap_ns >= backoff_initial_ns && max_resets > 0 &&
           resend_window > 0 && max_reconnects > 0;
  }
};

// Tracks host progress against a deadline. The owner calls NoteProgress()
// whenever the host visibly advanced (consumed TX, produced RX), Arm()/
// Disarm() as in-flight work appears and drains, and Expired() from its poll
// loop. After a reset, NoteReset() doubles the window (capped) and counts
// the reset; a later NoteProgress() call restores the initial window.
class LinkWatchdog {
 public:
  explicit LinkWatchdog(const RecoveryConfig& config)
      : config_(config), timeout_ns_(config.watchdog_timeout_ns) {}

  // Host made visible progress: reset the deadline and forgive past resets.
  void NoteProgress(uint64_t now_ns) {
    deadline_armed_ = false;
    armed_since_ns_ = now_ns;
    timeout_ns_ = config_.watchdog_timeout_ns;
    consecutive_resets_ = 0;
  }

  // Work is in flight; start the clock if it is not already running.
  void Arm(uint64_t now_ns) {
    if (!deadline_armed_) {
      deadline_armed_ = true;
      armed_since_ns_ = now_ns;
    }
  }

  // No work in flight and counters coherent: stop the clock.
  void Disarm() { deadline_armed_ = false; }

  bool armed() const { return deadline_armed_; }

  bool Expired(uint64_t now_ns) const {
    return config_.enabled && deadline_armed_ &&
           now_ns - armed_since_ns_ >= timeout_ns_;
  }

  // A reset happened: back off (doubling, capped) and re-arm from now.
  void NoteReset(uint64_t now_ns) {
    ++consecutive_resets_;
    uint64_t doubled = timeout_ns_ * 2;
    timeout_ns_ = doubled > config_.backoff_cap_ns ? config_.backoff_cap_ns
                                                   : doubled;
    deadline_armed_ = true;
    armed_since_ns_ = now_ns;
  }

  // True once the reset budget is spent without an intervening reattach.
  bool Exhausted() const { return consecutive_resets_ >= config_.max_resets; }

  uint32_t consecutive_resets() const { return consecutive_resets_; }
  uint64_t timeout_ns() const { return timeout_ns_; }

 private:
  RecoveryConfig config_;
  uint64_t timeout_ns_;
  bool deadline_armed_ = false;
  uint64_t armed_since_ns_ = 0;
  uint32_t consecutive_resets_ = 0;
};

}  // namespace ciobase

#endif  // SRC_BASE_RECOVERY_H_
