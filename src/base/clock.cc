#include "src/base/clock.h"

// SimClock and CostModel are header-only today; this translation unit exists
// so the library has a stable archive member for them and future out-of-line
// additions.

namespace ciobase {}  // namespace ciobase
