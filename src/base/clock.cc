#include "src/base/clock.h"

namespace ciobase {

std::string_view CostCounterName(CostCounter counter) {
  switch (counter) {
    case CostCounter::kHostExits:
      return "host_exits";
    case CostCounter::kNotifies:
      return "notifies";
    case CostCounter::kCompartmentSwitches:
      return "compartment_switches";
    case CostCounter::kTeeSwitches:
      return "tee_switches";
    case CostCounter::kRingPolls:
      return "ring_polls";
    case CostCounter::kCopies:
      return "copies";
    case CostCounter::kBytesCopied:
      return "bytes_copied";
    case CostCounter::kAeadOps:
      return "aead_ops";
    case CostCounter::kBytesAead:
      return "bytes_aead";
    case CostCounter::kPagesUnshared:
      return "pages_unshared";
    case CostCounter::kPagesReshared:
      return "pages_reshared";
  }
  return "unknown";
}

}  // namespace ciobase
