// Minimal leveled logger. Off by default above kWarn so tests stay quiet;
// examples turn on kInfo to narrate what the stack is doing.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace ciobase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink; use the CIO_LOG macro instead.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace ciobase

#define CIO_LOG(level)                                          \
  if (::ciobase::LogLevel::level < ::ciobase::GetLogLevel()) {  \
  } else                                                        \
    ::ciobase::LogLine(::ciobase::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_BASE_LOG_H_
