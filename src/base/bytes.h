// Byte-buffer utilities shared by every cio library: spans over raw bytes,
// little/big-endian loads and stores, hex encoding, and a growable Buffer.
//
// All wire formats in this codebase (virtqueue descriptors, Ethernet/IP/TCP
// headers, TLS records, block-ring slots) are serialized through these
// helpers so that endianness handling lives in exactly one place.

#ifndef SRC_BASE_BYTES_H_
#define SRC_BASE_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace ciobase {

using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;
using Buffer = std::vector<uint8_t>;

// --- Unaligned little-endian accessors -------------------------------------

inline uint16_t LoadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}
inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
inline uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         static_cast<uint64_t>(LoadLe32(p + 4)) << 32;
}
inline void StoreLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void StoreLe64(uint8_t* p, uint64_t v) {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

// --- Unaligned big-endian (network order) accessors ------------------------

inline uint16_t LoadBe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) << 8 | p[1]);
}
inline uint32_t LoadBe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}
inline uint64_t LoadBe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadBe32(p)) << 32 |
         static_cast<uint64_t>(LoadBe32(p + 4));
}
inline void StoreBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
inline void StoreBe64(uint8_t* p, uint64_t v) {
  StoreBe32(p, static_cast<uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<uint32_t>(v));
}

// --- Buffer helpers ---------------------------------------------------------

// Appends `src` to `out`.
inline void Append(Buffer& out, ByteSpan src) {
  out.insert(out.end(), src.begin(), src.end());
}

// Appends a string's bytes to `out`.
inline void AppendString(Buffer& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

// Makes a Buffer from a string literal / string_view (for tests & examples).
Buffer BufferFromString(std::string_view s);

// Interprets a byte span as a std::string (for tests & examples).
std::string StringFromBytes(ByteSpan bytes);

// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(ByteSpan bytes);

// Inverse of HexEncode. Returns an empty buffer on malformed input.
Buffer HexDecode(std::string_view hex);

// Classic offset/hex/ascii dump, 16 bytes per line (debugging aid).
std::string HexDump(ByteSpan bytes);

// Constant-time byte-span equality (length leak only). Used for MAC checks.
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

}  // namespace ciobase

#endif  // SRC_BASE_BYTES_H_
