#include "src/base/bytes.h"

#include <array>

namespace ciobase {

Buffer BufferFromString(std::string_view s) {
  return Buffer(s.begin(), s.end());
}

std::string StringFromBytes(ByteSpan bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string HexEncode(ByteSpan bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Buffer HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Buffer out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string HexDump(ByteSpan bytes) {
  std::string out;
  std::array<char, 80> line;
  for (size_t off = 0; off < bytes.size(); off += 16) {
    size_t n = std::min<size_t>(16, bytes.size() - off);
    int pos = std::snprintf(line.data(), line.size(), "%08zx  ", off);
    out.append(line.data(), static_cast<size_t>(pos));
    for (size_t i = 0; i < 16; ++i) {
      if (i < n) {
        pos = std::snprintf(line.data(), line.size(), "%02x ", bytes[off + i]);
        out.append(line.data(), static_cast<size_t>(pos));
      } else {
        out.append("   ");
      }
      if (i == 7) {
        out.push_back(' ');
      }
    }
    out.append(" |");
    for (size_t i = 0; i < n; ++i) {
      uint8_t c = bytes[off + i];
      out.push_back(c >= 0x20 && c < 0x7f ? static_cast<char>(c) : '.');
    }
    out.append("|\n");
  }
  return out;
}

bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace ciobase
