// Power-of-two and masking helpers.
//
// The paper's "safe ring buffer & shared data area" principle (§3.2) mandates
// that all host-influenced indices and offsets be made safe *by construction*
// via masking against power-of-two sizes, rather than by ad-hoc bounds
// checks. These helpers are the single implementation of that masking.

#ifndef SRC_BASE_BITS_H_
#define SRC_BASE_BITS_H_

#include <cstddef>
#include <cstdint>

namespace ciobase {

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Smallest power of two >= v (v must be <= 2^63; RoundUpPow2(0) == 1).
constexpr uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Masks an untrusted index into [0, size) where size is a power of two.
// This is total: no branch, no failure path — the core of the paper's
// masking discipline (cf. Xen's ring macros [14]).
constexpr uint64_t MaskIndex(uint64_t untrusted, uint64_t pow2_size) {
  return untrusted & (pow2_size - 1);
}

// Masks an untrusted byte offset so that [offset, offset + len) stays within
// a power-of-two area of `pow2_area` bytes, assuming len <= pow2_chunk and
// offset is produced in pow2_chunk-aligned units. Returns the clamped offset.
constexpr uint64_t MaskOffset(uint64_t untrusted, uint64_t pow2_area,
                              uint64_t pow2_chunk) {
  // Align down to the chunk, then wrap inside the area.
  return (untrusted & ~(pow2_chunk - 1)) & (pow2_area - 1);
}

constexpr uint64_t AlignUp(uint64_t v, uint64_t pow2) {
  return (v + pow2 - 1) & ~(pow2 - 1);
}

constexpr uint64_t AlignDown(uint64_t v, uint64_t pow2) {
  return v & ~(pow2 - 1);
}

constexpr bool IsAligned(uint64_t v, uint64_t pow2) {
  return (v & (pow2 - 1)) == 0;
}

constexpr uint32_t RotL32(uint32_t x, int r) {
  return (x << r) | (x >> (32 - r));
}

constexpr uint64_t RotL64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

constexpr uint32_t RotR32(uint32_t x, int r) {
  return (x >> r) | (x << (32 - r));
}

}  // namespace ciobase

#endif  // SRC_BASE_BITS_H_
