#!/usr/bin/env bash
# Counts non-blank, non-comment-only lines per library, for the TCB
# accounting table in src/cio/tcb.cc. Run from the repository root:
#
#   tools/count_loc.sh
#
# The tcb.cc table intentionally stores rounded values; tests/tcb_test.cc
# checks the table against this script's methodology within a tolerance.

set -euo pipefail

count() {
  # shellcheck disable=SC2068
  grep -hvE '^\s*(//.*)?$' $@ 2>/dev/null | wc -l
}

echo "library LoC (non-blank, non-comment-only):"
for dir in src/base src/crypto src/tee src/tls src/net src/virtio \
           src/cio src/blockio src/study; do
  printf '  %-14s %6d\n' "$(basename "$dir")" \
    "$(count "$dir"/*.h "$dir"/*.cc)"
done
printf '  %-14s %6d\n' "tests" "$(count tests/*.cc tests/*.h)"
printf '  %-14s %6d\n' "bench" "$(count bench/*.cc bench/*.h)"
printf '  %-14s %6d\n' "examples" "$(count examples/*.cpp)"
