#!/usr/bin/env bash
# Builds and drives the coverage-guided host-interface fuzzer (src/fuzz,
# CLI in bench/fuzz_interface.cc).
#
# Usage:
#   tools/run_fuzz.sh --smoke [build-dir]        CI gate: fixed-seed 10k
#                                                iterations across every
#                                                target; repro files land in
#                                                $FUZZ_OUT (default
#                                                <build>/fuzz-out); exits
#                                                non-zero on any gated
#                                                failure or missing coverage
#                                                gain
#   tools/run_fuzz.sh --replay FILE [build-dir]  re-execute one serialized
#                                                repro; exit 0 iff the
#                                                recorded failure reproduces
#   tools/run_fuzz.sh [flags...]                 ad-hoc campaign; flags are
#                                                passed straight to the
#                                                binary (--seed, --iters,
#                                                --target, --json, ...)
#
# FUZZ_OUT overrides where smoke-mode repro files are written.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode="run"
replay_file=""
case "${1:-}" in
  --smoke)
    mode="smoke"
    shift
    ;;
  --replay)
    mode="replay"
    replay_file="${2:?usage: tools/run_fuzz.sh --replay FILE [build-dir]}"
    shift 2
    ;;
esac

# A trailing bare argument that names a directory selects the build tree
# (mirrors run_bench.sh); everything else is forwarded to the binary.
build_dir="$repo_root/build"
args=()
for arg in "$@"; do
  if [[ -d "$arg" || "$arg" == */build* ]] && [[ "$arg" != -* ]]; then
    build_dir="$arg"
  else
    args+=("$arg")
  fi
done

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target fuzz_interface -j >/dev/null

fuzz_bin="$build_dir/bench/fuzz_interface"

case "$mode" in
  smoke)
    out_dir="${FUZZ_OUT:-$build_dir/fuzz-out}"
    mkdir -p "$out_dir"
    "$fuzz_bin" --smoke --out "$out_dir" "${args[@]+"${args[@]}"}"
    ;;
  replay)
    "$fuzz_bin" --replay "$replay_file" "${args[@]+"${args[@]}"}"
    ;;
  run)
    "$fuzz_bin" "${args[@]+"${args[@]}"}"
    ;;
esac
