#!/usr/bin/env bash
# Builds the benchmarks and records the performance trajectory for this
# revision: bench_throughput's table goes to stdout and its JSON form is
# written to BENCH_throughput.json at the repo root (likewise blockio and
# server load), so successive revisions can be diffed cell by cell.
#
# Usage:
#   tools/run_bench.sh [build-dir]          regenerate the committed baselines
#   tools/run_bench.sh --check [build-dir]  run fresh, diff against the
#                                           committed baselines with a
#                                           percentage tolerance, exit
#                                           non-zero on regression (CI gate)
#
# BENCH_TOLERANCE overrides the allowed relative drift (default 0.10).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
check_mode=0
if [[ "${1:-}" == "--check" ]]; then
  check_mode=1
  shift
fi
build_dir="${1:-$repo_root/build}"
tolerance="${BENCH_TOLERANCE:-0.10}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_throughput bench_crypto \
  bench_blockio bench_server_load bench_session_churn -j >/dev/null

out_dir="$repo_root"
if [[ "$check_mode" == 1 ]]; then
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
fi

"$build_dir/bench/bench_throughput" --json "$out_dir/BENCH_throughput.json"
echo
"$build_dir/bench/bench_crypto"
echo
"$build_dir/bench/bench_blockio" --json "$out_dir/BENCH_blockio.json"
echo
"$build_dir/bench/bench_server_load" --json "$out_dir/BENCH_server.json"
echo
"$build_dir/bench/bench_session_churn" --json "$out_dir/BENCH_session.json"

if [[ "$check_mode" == 1 ]]; then
  echo
  status=0
  for name in BENCH_throughput BENCH_blockio BENCH_server BENCH_session; do
    python3 "$repo_root/tools/check_bench.py" \
      "$repo_root/$name.json" "$out_dir/$name.json" \
      --tolerance "$tolerance" || status=1
  done
  exit "$status"
fi
