#!/usr/bin/env bash
# Builds the benchmarks and records the throughput trajectory for this
# revision: bench_throughput's table goes to stdout and its JSON form is
# written to BENCH_throughput.json at the repo root, so successive revisions
# can be diffed cell by cell.
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target bench_throughput bench_crypto \
  bench_blockio bench_server_load -j >/dev/null

"$build_dir/bench/bench_throughput" --json "$repo_root/BENCH_throughput.json"
echo
"$build_dir/bench/bench_crypto"
echo
"$build_dir/bench/bench_blockio" --json "$repo_root/BENCH_blockio.json"
echo
"$build_dir/bench/bench_server_load" --json "$repo_root/BENCH_server.json"
