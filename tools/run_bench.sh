#!/usr/bin/env bash
# Builds the benchmarks and records the performance trajectory for this
# revision: bench_throughput's table goes to stdout and its JSON form is
# written to BENCH_throughput.json at the repo root (likewise blockio and
# server load), so successive revisions can be diffed cell by cell.
#
# BENCH_profile.json is the in-sim cycle-accounting profile: per-stage
# attribution rows from bench_throughput --profile (arms throughput-tx/-rx)
# and bench_server_load --profile (arm server-load), merged into one file.
# The simulated clock makes it byte-deterministic, so it is gated like the
# other baselines — per-stage time with a relative tolerance, share-of-total
# percentages with an absolute drift window (see check_bench.py).
#
# Usage:
#   tools/run_bench.sh [build-dir]          regenerate the committed baselines
#   tools/run_bench.sh --check [build-dir]  run fresh, diff against the
#                                           committed baselines with a
#                                           percentage tolerance, exit
#                                           non-zero on regression (CI gate)
#   tools/run_bench.sh --profile-only [build-dir]
#                                           only the profiled arms +
#                                           BENCH_profile.json (combines with
#                                           --check; the sanitizer CI job uses
#                                           this to gate the profile without
#                                           re-running every table twice)
#
# In --check mode the fresh JSONs are also copied to <build-dir>/bench-fresh/
# so CI can upload them as a repro artifact when the gate fails.
#
# BENCH_TOLERANCE overrides the allowed relative drift (default 0.10);
# BENCH_PCT_TOLERANCE the absolute drift for _pct shares (default 5.0).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
check_mode=0
profile_only=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --check) check_mode=1 ;;
    --profile-only) profile_only=1 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done
build_dir="${1:-$repo_root/build}"
tolerance="${BENCH_TOLERANCE:-0.10}"
pct_tolerance="${BENCH_PCT_TOLERANCE:-5.0}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
if [[ "$profile_only" == 1 ]]; then
  cmake --build "$build_dir" --target bench_throughput bench_server_load \
    -j >/dev/null
else
  cmake --build "$build_dir" --target bench_throughput bench_crypto \
    bench_blockio bench_server_load bench_session_churn -j >/dev/null
fi

out_dir="$repo_root"
if [[ "$check_mode" == 1 ]]; then
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
fi

if [[ "$profile_only" == 1 ]]; then
  "$build_dir/bench/bench_throughput" --mode=throughput \
    --profile "$out_dir/BENCH_profile_throughput.json"
  echo
  "$build_dir/bench/bench_server_load" \
    --profile "$out_dir/BENCH_profile_server.json"
else
  "$build_dir/bench/bench_throughput" --json "$out_dir/BENCH_throughput.json" \
    --profile "$out_dir/BENCH_profile_throughput.json"
  echo
  "$build_dir/bench/bench_crypto"
  echo
  "$build_dir/bench/bench_blockio" --json "$out_dir/BENCH_blockio.json"
  echo
  "$build_dir/bench/bench_server_load" --json "$out_dir/BENCH_server.json" \
    --profile "$out_dir/BENCH_profile_server.json"
  echo
  "$build_dir/bench/bench_session_churn" --json "$out_dir/BENCH_session.json"
fi

# Merge the two benches' profile rows into the one committed baseline.
# Deterministic: both inputs are byte-stable and the merge preserves order.
python3 - "$out_dir/BENCH_profile_throughput.json" \
  "$out_dir/BENCH_profile_server.json" "$out_dir/BENCH_profile.json" <<'EOF'
import json, sys
rows = []
for path in sys.argv[1:-1]:
    with open(path) as f:
        rows.extend(json.load(f))
with open(sys.argv[-1], "w") as f:
    json.dump(rows, f, indent=1)
    f.write("\n")
EOF
rm -f "$out_dir/BENCH_profile_throughput.json" \
  "$out_dir/BENCH_profile_server.json"
echo "merged profile rows into $out_dir/BENCH_profile.json"

if [[ "$check_mode" == 1 ]]; then
  echo
  names=(BENCH_profile)
  if [[ "$profile_only" == 0 ]]; then
    names=(BENCH_throughput BENCH_blockio BENCH_server BENCH_session
           BENCH_profile)
  fi
  status=0
  for name in "${names[@]}"; do
    python3 "$repo_root/tools/check_bench.py" \
      "$repo_root/$name.json" "$out_dir/$name.json" \
      --tolerance "$tolerance" --pct-tolerance "$pct_tolerance" || status=1
  done
  # Keep the fresh JSONs where CI can pick them up as a repro artifact.
  mkdir -p "$build_dir/bench-fresh"
  cp "$out_dir"/BENCH_*.json "$build_dir/bench-fresh/"
  exit "$status"
fi
