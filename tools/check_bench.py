#!/usr/bin/env python3
"""Diff a freshly generated BENCH_*.json against the committed baseline.

Rows are matched by their identity fields (profile / mode / msg_size /
layer / access / ...), then each performance metric is compared with a
percentage tolerance, direction-aware: throughput-like metrics may not drop
below baseline * (1 - tol), latency-like metrics may not rise above
baseline * (1 + tol). The modeled clock makes the benchmarks deterministic,
so any drift past the tolerance is a real datapath change, not noise.

`_pct` metrics (profiler share-of-total and unattributed remainders) are
shares, not magnitudes: they are compared with an ABSOLUTE drift window in
percentage points (|fresh - base| <= pct-tolerance), in both directions,
including when the baseline is 0.00 — a stage share appearing from nothing
is exactly the drift the profile gate exists to catch.

Usage: check_bench.py <baseline.json> <fresh.json> [--tolerance 0.10]
                      [--pct-tolerance 5.0]
Exit code 0 = within tolerance, 1 = regression (or shape mismatch).
"""

import argparse
import json
import sys

IDENTITY_FIELDS = {
    "profile", "mode", "msg_size", "layer", "access",
    "clients", "messages_per_client", "strategy", "arm", "probe",
}
# Higher is better: a fresh value below baseline * (1 - tol) fails.
HIGHER_BETTER_SUFFIXES = ("_per_sec", "gbit_per_sec", "fairness")
# Lower is better: a fresh value above baseline * (1 + tol) fails.
LOWER_BETTER_SUFFIXES = ("_us", "_ns")
# Share-of-total percentages: absolute drift window, both directions.
PCT_SUFFIXES = ("_pct",)
# Hard invariants: compared exactly, no tolerance. `dropped` is the
# profiler's scope-stack overflow count — any nonzero change means probes
# were silently lost.
EXACT_FIELDS = {"ok", "lost", "dropped"}
# Bookkeeping counters that legitimately move between revisions.
IGNORED_FIELDS = {"recovered", "rejected_admission", "fault_events"}


def row_key(row):
    return tuple(sorted(
        (k, v) for k, v in row.items() if k in IDENTITY_FIELDS))


def classify(field):
    if field in EXACT_FIELDS:
        return "exact"
    if field in IGNORED_FIELDS or field in IDENTITY_FIELDS:
        return "ignore"
    if field.endswith(PCT_SUFFIXES):
        return "pct"
    if field.endswith(LOWER_BETTER_SUFFIXES):
        return "lower"
    if field.endswith(HIGHER_BETTER_SUFFIXES) or field == "fairness":
        return "higher"
    return "ignore"


def compare(baseline, fresh, tolerance, pct_tolerance=5.0):
    fresh_by_key = {row_key(r): r for r in fresh}
    failures = []
    for base_row in baseline:
        key = row_key(base_row)
        label = " ".join(str(v) for _, v in key)
        fresh_row = fresh_by_key.get(key)
        if fresh_row is None:
            failures.append(f"missing row: {label}")
            continue
        if not base_row.get("ok", True):
            continue  # the baseline never completed this cell; nothing to hold
        for field, base_value in base_row.items():
            kind = classify(field)
            if kind == "ignore":
                continue
            fresh_value = fresh_row.get(field)
            if fresh_value is None:
                failures.append(f"{label}: field {field} disappeared")
                continue
            if kind == "exact":
                if fresh_value != base_value:
                    failures.append(
                        f"{label}: {field} was {base_value}, now {fresh_value}")
                continue
            if kind == "pct":
                drift = abs(fresh_value - base_value)
                if drift > pct_tolerance:
                    failures.append(
                        f"{label}: {field} drifted {drift:.2f} points "
                        f"({base_value} -> {fresh_value})")
                continue
            if base_value == 0:
                continue  # unmeasured in the baseline; nothing to compare
            ratio = fresh_value / base_value
            if kind == "higher" and ratio < 1.0 - tolerance:
                failures.append(
                    f"{label}: {field} dropped {(1.0 - ratio) * 100:.1f}% "
                    f"({base_value} -> {fresh_value})")
            elif kind == "lower" and ratio > 1.0 + tolerance:
                failures.append(
                    f"{label}: {field} rose {(ratio - 1.0) * 100:.1f}% "
                    f"({base_value} -> {fresh_value})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative drift allowed per metric (default 0.10)")
    parser.add_argument("--pct-tolerance", type=float, default=5.0,
                        help="absolute drift in percentage points allowed for "
                             "_pct share metrics (default 5.0)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = compare(baseline, fresh, args.tolerance, args.pct_tolerance)
    name = args.baseline
    if failures:
        print(f"{name}: {len(failures)} regression(s) past "
              f"{args.tolerance * 100:.0f}% tolerance:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"{name}: {len(baseline)} rows within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
